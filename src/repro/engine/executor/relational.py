"""Streaming relational operators: filter, project, joins, threshold, sort, limit.

Each probabilistic decision is delegated to the core plans
(:class:`~repro.core.select.SelectionPlan`,
:class:`~repro.core.project.ProjectionPlan`,
:func:`~repro.core.threshold.probability_of`), so the executor and the
in-memory model cannot diverge semantically.
"""

from __future__ import annotations

import heapq
import itertools
import operator
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ...core.history import HistoryStore, rename_lineage
from ...core.join import (
    build_probe_index,
    gather_key_vector,
    keys_kernelizable,
    probe_ranges,
)
from ...core.model import (
    DEFAULT_CONFIG,
    ModelConfig,
    ProbabilisticSchema,
    ProbabilisticTuple,
)
from ...core.operations import cached_marginalize, cached_mass
from ...core.predicates import Comparison, Predicate, TruePredicate
from ...core.project import ProjectionPlan
from ...core.select import SelectionPlan
from ...core.threshold import (
    batch_probability_of,
    columnar_probability_of,
    probability_of,
)
from ...errors import QueryError, SchemaError
from .base import Operator
from .batch import DEFAULT_BATCH_SIZE, TupleBatch, batched, flatten
from .columnar import ColumnarBatch
from .spill import SPILL_STATS, ExternalSorter, SpillManager, estimate_tuple_bytes

__all__ = [
    "Filter",
    "Project",
    "Scalarize",
    "RenameOp",
    "NestedLoopJoin",
    "HashJoin",
    "ThresholdFilter",
    "ProbFilter",
    "Sort",
    "SortByProbability",
    "Limit",
]

_THRESH_OPS = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
}


class Filter(Operator):
    """σ over a stream, via the shared SelectionPlan."""

    def __init__(
        self,
        child: Operator,
        predicate: Predicate,
        store: HistoryStore,
        config: ModelConfig = DEFAULT_CONFIG,
    ):
        self.child = child
        self.predicate = predicate
        self.store = store
        self.plan = SelectionPlan(child.output_schema, predicate, config)
        self.output_schema = self.plan.output_schema

    def __iter__(self) -> Iterator[ProbabilisticTuple]:
        def run():
            for t in self.child:
                result = self.plan.apply(t, self.store)
                if result is not None:
                    yield result

        return self._count_tuples(run())

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[TupleBatch]:
        columnar = self.plan.config.columnar

        def run():
            for batch in self.child.batches(size):
                if columnar and type(batch) is ColumnarBatch:
                    results = self.plan.apply_columnar(batch, self.store)
                else:
                    results = self.plan.apply_batch(batch.tuples, self.store)
                kept = [r for r in results if r is not None]
                if kept:
                    yield TupleBatch(kept)

        return self._count_batches(run())

    def children(self) -> List[Operator]:
        return [self.child]

    def explain_extras(self) -> List[str]:
        stats = self.plan.columnar_stats
        kernel, fallback = stats["kernel_rows"], stats["fallback_rows"]
        if not kernel and not fallback:
            return []
        extras = [f"columnar_rows={kernel}/{kernel + fallback}"]
        if stats["families"]:
            fams = ",".join(
                f"{name}:{count}" for name, count in sorted(stats["families"].items())
            )
            extras.append(f"kernels={fams}")
        return extras

    def label(self) -> str:
        return f"Filter({self.predicate!r})"


class Project(Operator):
    """Π over a stream (conservative phantom policy — see ProjectionPlan)."""

    def __init__(
        self,
        child: Operator,
        attrs: Sequence[str],
        config: ModelConfig = DEFAULT_CONFIG,
    ):
        self.child = child
        self.attrs = list(attrs)
        self.plan = ProjectionPlan(child.output_schema, attrs, partial_sets=None, config=config)
        self.output_schema = self.plan.output_schema
        # A projection that keeps every visible attribute in order and every
        # dependency set intact rebuilds each tuple with the same contents;
        # the batch path passes such batches through untouched so columnar
        # views survive a SELECT * projection.
        self._identity = self.attrs == list(
            child.output_schema.visible_attrs
        ) and all(action == "keep" for _, action in self.plan._actions)

    def __iter__(self) -> Iterator[ProbabilisticTuple]:
        for t in self.child:
            yield self.plan.apply(t)

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[TupleBatch]:
        if self._identity:
            yield from self.child.batches(size)
            return
        apply = self.plan.apply
        for batch in self.child.batches(size):
            yield TupleBatch([apply(t) for t in batch.tuples])

    def children(self) -> List[Operator]:
        return [self.child]

    def label(self) -> str:
        return f"Project({', '.join(self.attrs)})"


def _merge_schemas(
    left: ProbabilisticSchema, right: ProbabilisticSchema
) -> Tuple[ProbabilisticSchema, Dict[str, str]]:
    """Combined cross-product schema, with colliding phantoms renamed on the right."""
    left_attrs = set(left.visible_attrs) | left.phantom_attrs
    right_attrs = set(right.visible_attrs) | right.phantom_attrs
    visible_overlap = set(left.visible_attrs) & set(right.visible_attrs)
    if visible_overlap:
        raise SchemaError(
            f"join attribute collision on {sorted(visible_overlap)}; alias one side"
        )
    renames: Dict[str, str] = {}
    overlap = (left_attrs & right_attrs) - visible_overlap
    taken = left_attrs | right_attrs
    for attr in sorted(overlap):
        if attr not in right.phantom_attrs:
            raise SchemaError(
                f"attribute {attr!r} is phantom on the left but visible on the "
                "right; alias one side"
            )
        i = 1
        while f"{attr}#{i}" in taken:
            i += 1
        renames[attr] = f"{attr}#{i}"
        taken.add(f"{attr}#{i}")
    renamed_right = right.renamed(renames) if renames else right
    merged = ProbabilisticSchema(
        list(left.columns) + list(renamed_right.columns),
        list(left.dependency) + list(renamed_right.dependency),
    )
    return merged, renames


def _rename_tuple(t: ProbabilisticTuple, renames: Dict[str, str]) -> ProbabilisticTuple:
    if not renames:
        return t
    certain = {renames.get(k, k): v for k, v in t.certain.items()}
    pdfs = {}
    lineage = {}
    for dep, pdf in t.pdfs.items():
        new_dep = frozenset(renames.get(a, a) for a in dep)
        pdfs[new_dep] = None if pdf is None else pdf.rename(renames)
        lineage[new_dep] = rename_lineage(t.lineage.get(dep, frozenset()), renames)
    return ProbabilisticTuple(t.tuple_id, certain, pdfs, lineage)


def _merge_pair(
    tl: ProbabilisticTuple, tr: ProbabilisticTuple, tuple_id: int
) -> ProbabilisticTuple:
    certain = dict(tl.certain)
    certain.update(tr.certain)
    pdfs = dict(tl.pdfs)
    pdfs.update(tr.pdfs)
    lineage = dict(tl.lineage)
    lineage.update(tr.lineage)
    # The dicts are freshly built and never aliased: skip __init__'s
    # defensive copies (this is the densest allocation site in every join).
    return ProbabilisticTuple._adopt(tuple_id, certain, pdfs, lineage)


def _select_batches(
    plan: SelectionPlan, store: HistoryStore, source, size: int
) -> Iterator[TupleBatch]:
    """Run a SelectionPlan over a tuple stream, ``size`` tuples per kernel sweep."""
    for batch in batched(source, size):
        results = plan.apply_batch(batch.tuples, store)
        kept = [r for r in results if r is not None]
        if kept:
            yield TupleBatch(kept)


class NestedLoopJoin(Operator):
    """⋈ via nested loops: the right input is materialised once."""

    def __init__(
        self,
        left: Operator,
        right: Operator,
        predicate: Predicate,
        store: HistoryStore,
        config: ModelConfig = DEFAULT_CONFIG,
    ):
        self.left = left
        self.right = right
        self.predicate = predicate
        self.store = store
        self.config = config
        merged, self._renames = _merge_schemas(left.output_schema, right.output_schema)
        self.plan = SelectionPlan(merged, predicate, config)
        self.output_schema = self.plan.output_schema

    def __iter__(self) -> Iterator[ProbabilisticTuple]:
        inner = [_rename_tuple(t, self._renames) for t in self.right]
        for tl in self.left:
            for tr in inner:
                pair = _merge_pair(tl, tr, self.store.new_tuple_id())
                result = self.plan.apply(pair, self.store)
                if result is not None:
                    yield result

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[TupleBatch]:
        inner = [
            _rename_tuple(t, self._renames)
            for t in flatten(self.right.batches(size))
        ]

        def pairs() -> Iterator[ProbabilisticTuple]:
            for batch in self.left.batches(size):
                for tl in batch.tuples:
                    for tr in inner:
                        yield _merge_pair(tl, tr, self.store.new_tuple_id())

        yield from _select_batches(self.plan, self.store, pairs(), size)

    def children(self) -> List[Operator]:
        return [self.left, self.right]

    def label(self) -> str:
        return f"NestedLoopJoin({self.predicate!r})"


class HashJoin(Operator):
    """Equi-join on *certain* key columns: hash build + probe.

    The full predicate (which may include additional probabilistic terms)
    is still applied through the SelectionPlan after the hash pre-filter —
    the hash only prunes pairs whose certain keys cannot match.

    With ``ModelConfig.columnar`` on, the batch path builds a float64 key
    vector over the (renamed) right input, sorts it stably, and probes each
    left batch's key column with one vectorized ``searchsorted`` sweep per
    batch instead of a dict lookup per row.  The stable sort keeps equal
    keys in right-scan insertion order, and matched-pair ids come from one
    contiguous block allocation, so the emitted pair stream — ids, order,
    contents — is bitwise identical to the reference bucket path.  Keys the
    float vector cannot represent faithfully (strings, nan, magnitudes >=
    2**53) fall back to the reference dict per side; a fallback is a
    performance event, never a semantic one.
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_key: str,
        right_key: str,
        predicate: Predicate,
        store: HistoryStore,
        config: ModelConfig = DEFAULT_CONFIG,
    ):
        for schema, key, side in (
            (left.output_schema, left_key, "left"),
            (right.output_schema, right_key, "right"),
        ):
            if not schema.has_column(key) or schema.is_uncertain(key):
                raise QueryError(
                    f"hash join {side} key {key!r} must be a certain column"
                )
        self.left, self.right = left, right
        self.left_key, self.right_key = left_key, right_key
        self.predicate = predicate
        self.store = store
        self.config = config
        merged, self._renames = _merge_schemas(left.output_schema, right.output_schema)
        self.plan = SelectionPlan(merged, predicate, config)
        self.output_schema = self.plan.output_schema
        #: EXPLAIN ANALYZE: vectorized probe sweeps executed (one per left batch)
        self.join_probe_kernels = 0
        #: EXPLAIN ANALYZE: leaf partitions processed by the Grace spill path
        self.spill_partitions = 0

    def _build_buckets(
        self, right_tuples
    ) -> Dict[object, List[ProbabilisticTuple]]:
        buckets: Dict[object, List[ProbabilisticTuple]] = {}
        probe_key = self._renames.get(self.right_key, self.right_key)
        for tr in right_tuples:
            renamed = _rename_tuple(tr, self._renames)
            key = renamed.certain.get(probe_key)
            if key is not None:
                buckets.setdefault(key, []).append(renamed)
        return buckets

    def _trivial_match_predicate(self) -> bool:
        """Whether a key-matched pair always survives the SelectionPlan.

        True when the plan is certain-only and the predicate is exactly the
        join's own key equality (or TRUE): both keys of a matched pair are
        non-null and equal under Python ``==`` (the float64 guard ensures
        the vectorized match implies that), so ``apply`` would merely
        rewrap the pair — the hot path skips it entirely.
        """
        if not self.plan.certain_only:
            return False
        p = self.predicate
        if isinstance(p, TruePredicate):
            return True
        return (
            isinstance(p, Comparison)
            and p.op == "="
            and p.is_column_comparison
            and {p.left, p.right.name} == {self.left_key, self.right_key}
        )

    def __iter__(self) -> Iterator[ProbabilisticTuple]:
        buckets = self._build_buckets(self.right)
        for tl in self.left:
            key = tl.certain.get(self.left_key)
            if key is None:
                continue
            for tr in buckets.get(key, ()):
                pair = _merge_pair(tl, tr, self.store.new_tuple_id())
                result = self.plan.apply(pair, self.store)
                if result is not None:
                    yield result

    def _reference_pairs(self, inner, probe_key, size) -> Iterator[ProbabilisticTuple]:
        """Dict-bucket pair stream over an already-renamed right side."""
        buckets: Dict[object, List[ProbabilisticTuple]] = {}
        for tr in inner:
            key = tr.certain.get(probe_key)
            if key is not None:
                buckets.setdefault(key, []).append(tr)
        for batch in self.left.batches(size):
            for tl in batch.tuples:
                key = tl.certain.get(self.left_key)
                if key is None:
                    continue
                for tr in buckets.get(key, ()):
                    yield _merge_pair(tl, tr, self.store.new_tuple_id())

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[TupleBatch]:
        work_mem = self.config.work_mem or 0
        if work_mem:
            yield from self._grace_batches(size, work_mem)
            return
        inner = [
            _rename_tuple(t, self._renames)
            for t in flatten(self.right.batches(size))
        ]
        yield from self._inmemory_batches(inner, size)

    def _inmemory_batches(
        self, inner: List[ProbabilisticTuple], size: int
    ) -> Iterator[TupleBatch]:
        probe_key = self._renames.get(self.right_key, self.right_key)
        index = None
        if self.config.columnar:
            gathered = gather_key_vector(inner, probe_key)
            if gathered is not None and keys_kernelizable(*gathered):
                index = build_probe_index(*gathered)
        if index is None:
            yield from _select_batches(
                self.plan,
                self.store,
                self._reference_pairs(inner, probe_key, size),
                size,
            )
            return

        order, sorted_keys = index
        buckets: Optional[Dict[object, List[ProbabilisticTuple]]] = None

        def pairs_of(batch) -> Iterator[ProbabilisticTuple]:
            nonlocal buckets
            lkeys = None
            if type(batch) is ColumnarBatch:
                col = batch.certain_column(self.left_key)
                if col is not None and len(col[0]) == len(batch.tuples):
                    lkeys = col
            if lkeys is None:
                lkeys = gather_key_vector(batch.tuples, self.left_key)
            if lkeys is None or not keys_kernelizable(*lkeys):
                # This batch's keys need Python semantics: dict path, built
                # once from the same renamed right side in insertion order.
                if buckets is None:
                    buckets = {}
                    for tr in inner:
                        key = tr.certain.get(probe_key)
                        if key is not None:
                            buckets.setdefault(key, []).append(tr)
                for tl in batch.tuples:
                    key = tl.certain.get(self.left_key)
                    if key is None:
                        continue
                    for tr in buckets.get(key, ()):
                        yield _merge_pair(tl, tr, self.store.new_tuple_id())
                return
            lvals, lmask = lkeys
            live = np.flatnonzero(~lmask) if lmask.any() else None
            probe = lvals if live is None else lvals[live]
            lo, hi = probe_ranges(sorted_keys, probe)
            counts = hi - lo
            self.join_probe_kernels += 1
            total = int(counts.sum())
            if not total:
                return
            ids = iter(self.store.new_tuple_ids(total))
            tuples = batch.tuples
            for j in np.flatnonzero(counts):
                tl = tuples[j if live is None else live[j]]
                for r in order[lo[j] : hi[j]]:
                    yield _merge_pair(tl, inner[r], next(ids))

        def merged_stream() -> Iterator[ProbabilisticTuple]:
            for batch in self.left.batches(size):
                yield from pairs_of(batch)

        if self._trivial_match_predicate():
            yield from batched(merged_stream(), size)
        else:
            yield from _select_batches(self.plan, self.store, merged_stream(), size)

    #: Grace fan-out per partitioning pass and maximum recursion depth.
    _GRACE_FANOUT = 16
    _GRACE_MAX_LEVEL = 6

    def _grace_batches(self, size: int, work_mem: int) -> Iterator[TupleBatch]:
        """Memory-bounded join: in-memory if the build side fits, else Grace.

        The build (right) side streams into memory until ``work_mem`` bytes;
        if it fits, the ordinary in-memory path runs on the collected list.
        Otherwise both sides hash-partition to disk on the join key; equal
        keys land in the same partition, so every match for a left row lives
        in exactly one partition.  Each partition joins independently,
        writing candidate pairs (tagged with the left row's global sequence
        number) to a pair file; merging the pair files by left sequence
        restores the exact pair order of the in-memory path — matches for
        one left row stay in build-insertion order because they are
        consecutive in one file — and tuple ids are assigned sequentially
        at merge time, so ids, order, and contents are bitwise identical.
        """
        right_stream = (
            _rename_tuple(t, self._renames)
            for t in flatten(self.right.batches(size))
        )
        inner: List[ProbabilisticTuple] = []
        total = 0
        overflow = False
        for t in right_stream:
            inner.append(t)
            total += estimate_tuple_bytes(t)
            if total > work_mem:
                overflow = True
                break
        if not overflow:
            yield from self._inmemory_batches(inner, size)
            return

        probe_key = self._renames.get(self.right_key, self.right_key)
        fanout = self._GRACE_FANOUT
        with SpillManager(self.config.spill_dir, label="hashjoin") as mgr:
            rparts = [mgr.create_file(f"right{i}") for i in range(fanout)]
            for rseq, t in enumerate(itertools.chain(inner, right_stream)):
                key = t.certain.get(probe_key)
                if key is not None:
                    rparts[hash((0, key)) % fanout].append(rseq, t)
            del inner
            lparts = [mgr.create_file(f"left{i}") for i in range(fanout)]
            for lseq, t in enumerate(flatten(self.left.batches(size))):
                key = t.certain.get(self.left_key)
                if key is not None:
                    lparts[hash((0, key)) % fanout].append(lseq, t)
            for f in itertools.chain(rparts, lparts):
                f.finish()

            pair_files: List = []
            for rfile, lfile in zip(rparts, lparts):
                self._join_partition(
                    mgr, rfile, lfile, 1, pair_files, work_mem, probe_key
                )
            SPILL_STATS.on_join_spill(self.spill_partitions)

            def merged_stream() -> Iterator[ProbabilisticTuple]:
                streams = (pf.read() for pf in pair_files)
                for _lseq, pair, _ in heapq.merge(
                    *streams, key=lambda frame: frame[0]
                ):
                    yield ProbabilisticTuple._adopt(
                        self.store.new_tuple_id(),
                        pair.certain,
                        pair.pdfs,
                        pair.lineage,
                    )

            if self._trivial_match_predicate():
                yield from batched(merged_stream(), size)
            else:
                yield from _select_batches(
                    self.plan, self.store, merged_stream(), size
                )

    def _join_partition(
        self, mgr, rfile, lfile, level, pair_files, work_mem, probe_key
    ) -> None:
        """Join one partition in memory, recursing on build-side overflow."""
        fanout = self._GRACE_FANOUT
        rframes = rfile.read()
        loaded: List[ProbabilisticTuple] = []
        total = 0
        overflow = False
        for _seq, t, _ in rframes:
            loaded.append(t)
            total += estimate_tuple_bytes(t)
            if total > work_mem and level < self._GRACE_MAX_LEVEL:
                overflow = True
                break
        if overflow:
            # Recurse: re-partition both sides with a level-salted hash so
            # the keys spread differently than at the parent level.  File
            # order within each sub-partition preserves the parent order,
            # so per-key match order is unchanged.
            sub_r = [mgr.create_file(f"right{level}x{i}") for i in range(fanout)]
            sub_l = [mgr.create_file(f"left{level}x{i}") for i in range(fanout)]
            # Build-side order is carried by file order alone (the per-key
            # match order), so the frame sequence number is immaterial here.
            for t in itertools.chain(loaded, (frame[1] for frame in rframes)):
                key = t.certain.get(probe_key)
                sub_r[hash((level, key)) % fanout].append(0, t)
            for seq, t, _ in lfile.read():
                key = t.certain.get(self.left_key)
                sub_l[hash((level, key)) % fanout].append(seq, t)
            for f in itertools.chain(sub_r, sub_l):
                f.finish()
            for rf, lf in zip(sub_r, sub_l):
                self._join_partition(
                    mgr, rf, lf, level + 1, pair_files, work_mem, probe_key
                )
            return

        if not loaded:
            return
        buckets: Dict[object, List[ProbabilisticTuple]] = {}
        for t in loaded:
            buckets.setdefault(t.certain.get(probe_key), []).append(t)
        self.spill_partitions += 1
        pf = mgr.create_file(f"pairs{level}")
        for lseq, tl, _ in lfile.read():
            for tr in buckets.get(tl.certain.get(self.left_key), ()):
                pf.append(lseq, _merge_pair(tl, tr, 0))
        pf.finish()
        if pf.frames:
            pair_files.append(pf)

    def children(self) -> List[Operator]:
        return [self.left, self.right]

    def explain_extras(self) -> List[str]:
        extras = []
        if self.join_probe_kernels:
            extras.append(f"join_probe_kernels={self.join_probe_kernels}")
        if self.spill_partitions:
            extras.append(f"spill_partitions={self.spill_partitions}")
        return extras

    def label(self) -> str:
        return f"HashJoin({self.left_key} = {self.right_key}, {self.predicate!r})"


class Scalarize(Operator):
    """Per-row scalarisation of pdf columns: MEAN / VARIANCE / MASS.

    Appends certain REAL columns computed from each tuple's marginal pdf:
    ``mean`` and ``variance`` are conditional on existence, ``mass`` is the
    (unconditional) probability that the attribute's dependency set exists.
    NULL pdfs scalarise to NULL.
    """

    #: (spec func name) -> callable(marginal UnivariatePdf) -> float
    FUNCS = {
        "mean": lambda pdf: pdf.mean(),
        "variance": lambda pdf: pdf.variance(),
        "mass": cached_mass,
    }

    def __init__(self, child: Operator, items: Sequence[Tuple[str, str, str]]):
        """``items``: (func, source attr, output name) triples."""
        from ..table import Table  # noqa: F401  (avoid circular import hints)
        from ...core.model import Column, DataType

        if not items:
            raise QueryError("Scalarize needs at least one item")
        self.child = child
        self.items = list(items)
        schema = child.output_schema
        taken = set(schema.visible_attrs) | schema.phantom_attrs
        columns = list(schema.columns)
        for func, attr, name in self.items:
            if func not in self.FUNCS:
                raise QueryError(f"unknown scalar function {func!r}")
            if not schema.has_column(attr):
                raise QueryError(f"unknown column {attr!r}")
            if not schema.is_uncertain(attr):
                raise QueryError(
                    f"{func.upper()}({attr}) needs an uncertain column; "
                    f"{attr!r} is certain"
                )
            if name in taken:
                raise QueryError(f"output column {name!r} already exists")
            taken.add(name)
            columns.append(Column(name, DataType.REAL))
        self.output_schema = ProbabilisticSchema(columns, schema.dependency)

    def _scalarize(self, t: ProbabilisticTuple) -> ProbabilisticTuple:
        certain = dict(t.certain)
        for func, attr, name in self.items:
            pdf = t.pdf_of_attr(attr)
            if pdf is None:
                certain[name] = None
                continue
            marginal = (
                cached_marginalize(pdf, [attr]) if len(pdf.attrs) > 1 else pdf
            )
            certain[name] = float(self.FUNCS[func](marginal))
        return ProbabilisticTuple(t.tuple_id, certain, t.pdfs, t.lineage)

    def __iter__(self) -> Iterator[ProbabilisticTuple]:
        for t in self.child:
            yield self._scalarize(t)

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[TupleBatch]:
        for batch in self.child.batches(size):
            yield TupleBatch([self._scalarize(t) for t in batch.tuples])

    def children(self) -> List[Operator]:
        return [self.child]

    def label(self) -> str:
        inner = ", ".join(f"{f.upper()}({a}) AS {n}" for f, a, n in self.items)
        return f"Scalarize({inner})"


class RenameOp(Operator):
    """Rename attributes throughout a stream (aliasing, join disambiguation)."""

    def __init__(self, child: Operator, mapping: Dict[str, str]):
        self.child = child
        self.mapping = dict(mapping)
        self.output_schema = child.output_schema.renamed(self.mapping)

    def __iter__(self) -> Iterator[ProbabilisticTuple]:
        for t in self.child:
            yield _rename_tuple(t, self.mapping)

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[TupleBatch]:
        for batch in self.child.batches(size):
            yield TupleBatch([_rename_tuple(t, self.mapping) for t in batch.tuples])

    def children(self) -> List[Operator]:
        return [self.child]

    def label(self) -> str:
        pairs = ", ".join(f"{a}->{b}" for a, b in sorted(self.mapping.items()))
        return f"Rename({pairs})"


class ProbFilter(Operator):
    """``PROB(predicate) op p``: keep tuples whose predicate probability passes.

    The probability is computed by running the shared selection plan on the
    tuple and measuring the surviving joint mass (times the mass of every
    untouched partial pdf) — i.e. P(predicate holds AND the tuple exists).
    Qualifying tuples are emitted *unchanged* (no floors are applied), per
    Section III-E: operations on probability values copy histories over.
    """

    def __init__(
        self,
        child: Operator,
        predicate: Predicate,
        op: str,
        threshold: float,
        store: HistoryStore,
        config: ModelConfig = DEFAULT_CONFIG,
    ):
        if op not in _THRESH_OPS:
            raise QueryError(f"unknown threshold operator {op!r}")
        self.child = child
        self.predicate = predicate
        self.op = op
        self.threshold = float(threshold)
        self.store = store
        self.config = config
        self.plan = SelectionPlan(child.output_schema, predicate, config)
        self.output_schema = child.output_schema

    def __iter__(self) -> Iterator[ProbabilisticTuple]:
        compare = _THRESH_OPS[self.op]
        for t in self.child:
            selected = self.plan.apply(t, self.store)
            p = 0.0 if selected is None else probability_of(
                selected, self.store, None, self.config
            )
            if compare(p, self.threshold):
                yield t

    def _reference_probs(self, selected) -> Dict[int, float]:
        alive = [(i, s) for i, s in enumerate(selected) if s is not None]
        return dict(
            zip(
                (i for i, _ in alive),
                batch_probability_of(
                    [s for _, s in alive], self.store, None, self.config
                ),
            )
        )

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[TupleBatch]:
        compare = _THRESH_OPS[self.op]
        columnar = self.config.columnar
        for batch in self.child.batches(size):
            fast = None
            if columnar and type(batch) is ColumnarBatch:
                fast = self.plan.probabilities_columnar(batch)
            if fast is not None:
                probs, leftover = fast
                if leftover:
                    # Rows the column view cannot express: measure them the
                    # reference way (select, then mass the survivors).
                    sub = self.plan.apply_batch(
                        [batch.tuples[i] for i in leftover], self.store
                    )
                    sub_probs = self._reference_probs(sub)
                    for j, i in enumerate(leftover):
                        probs[i] = sub_probs.get(j, 0.0)
                kept = [
                    t
                    for t, p in zip(batch.tuples, probs)
                    if compare(p, self.threshold)
                ]
            else:
                if columnar and type(batch) is ColumnarBatch:
                    selected = self.plan.apply_columnar(batch, self.store)
                else:
                    selected = self.plan.apply_batch(batch.tuples, self.store)
                probs_map = self._reference_probs(selected)
                kept = [
                    t
                    for i, t in enumerate(batch.tuples)
                    if compare(probs_map.get(i, 0.0), self.threshold)
                ]
            if kept:
                yield TupleBatch(kept)

    def children(self) -> List[Operator]:
        return [self.child]

    def explain_extras(self) -> List[str]:
        stats = self.plan.columnar_stats
        kernel, fallback = stats["kernel_rows"], stats["fallback_rows"]
        if not kernel and not fallback:
            return []
        extras = [f"columnar_rows={kernel}/{kernel + fallback}"]
        if stats["families"]:
            fams = ",".join(
                f"{name}:{count}" for name, count in sorted(stats["families"].items())
            )
            extras.append(f"kernels={fams}")
        return extras

    def label(self) -> str:
        return f"ProbFilter(Pr({self.predicate!r}) {self.op} {self.threshold:g})"


class ThresholdFilter(Operator):
    """σ over probability values: keep tuples with ``Pr(attrs) op p``."""

    def __init__(
        self,
        child: Operator,
        attrs: Optional[Sequence[str]],
        op: str,
        threshold: float,
        store: HistoryStore,
        config: ModelConfig = DEFAULT_CONFIG,
    ):
        if op not in _THRESH_OPS:
            raise QueryError(f"unknown threshold operator {op!r}")
        if attrs is not None:
            for a in attrs:
                if not child.output_schema.has_column(a):
                    raise QueryError(f"unknown attribute {a!r} in PROB()")
        self.child = child
        self.attrs = list(attrs) if attrs is not None else None
        self.op = op
        self.threshold = float(threshold)
        self.store = store
        self.config = config
        self.output_schema = child.output_schema

    def __iter__(self) -> Iterator[ProbabilisticTuple]:
        compare = _THRESH_OPS[self.op]
        for t in self.child:
            p = probability_of(t, self.store, self.attrs, self.config)
            if compare(p, self.threshold):
                yield t

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[TupleBatch]:
        compare = _THRESH_OPS[self.op]
        columnar = self.config.columnar and len(self.output_schema.dependency) == 1
        for batch in self.child.batches(size):
            if columnar and type(batch) is ColumnarBatch:
                probs = columnar_probability_of(
                    batch, self.store, self.attrs, self.config
                )
            else:
                probs = batch_probability_of(
                    batch.tuples, self.store, self.attrs, self.config
                )
            kept = [
                t for t, p in zip(batch.tuples, probs) if compare(p, self.threshold)
            ]
            if kept:
                yield TupleBatch(kept)

    def children(self) -> List[Operator]:
        return [self.child]

    def label(self) -> str:
        target = ", ".join(self.attrs) if self.attrs else "*"
        return f"ThresholdFilter(Pr({target}) {self.op} {self.threshold:g})"


class SortByProbability(Operator):
    """ORDER BY PROB(*): rank tuples by existence probability.

    The classic probabilistic top-k pattern — pair with Limit to get the k
    most likely answers.  History-aware: shared ancestors are counted once
    per tuple.
    """

    def __init__(
        self,
        child: Operator,
        store: HistoryStore,
        descending: bool = True,
        config: ModelConfig = DEFAULT_CONFIG,
    ):
        self.child = child
        self.store = store
        self.descending = descending
        self.config = config
        self.output_schema = child.output_schema
        #: EXPLAIN ANALYZE: spilled runs merged by the external sort path
        self.sort_runs = 0

    def __iter__(self) -> Iterator[ProbabilisticTuple]:
        rows = [
            (probability_of(t, self.store, None, self.config), i, t)
            for i, t in enumerate(self.child)
        ]
        rows.sort(key=lambda item: (-item[0], item[1]) if self.descending else (item[0], item[1]))
        return iter([t for _, _, t in rows])

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[TupleBatch]:
        work_mem = self.config.work_mem or 0
        if work_mem:
            return self._external_batches(size, work_mem)
        tuples = list(flatten(self.child.batches(size)))
        probs = batch_probability_of(tuples, self.store, None, self.config)
        rows = [(p, i, t) for i, (p, t) in enumerate(zip(probs, tuples))]
        rows.sort(key=lambda item: (-item[0], item[1]) if self.descending else (item[0], item[1]))
        return batched((t for _, _, t in rows), size)

    def _external_batches(self, size: int, work_mem: int) -> Iterator[TupleBatch]:
        # Probabilities are computed per incoming batch — the kernels are
        # elementwise, so per-batch values equal the whole-input sweep —
        # and the (probability, sequence) order of the stable in-memory
        # sort is reproduced by the external run merge.
        with SpillManager(self.config.spill_dir, label="sortprob") as mgr:
            sorter = ExternalSorter(mgr, work_mem, descending=self.descending)
            for batch in self.child.batches(size):
                probs = batch_probability_of(
                    batch.tuples, self.store, None, self.config
                )
                for p, t in zip(probs, batch.tuples):
                    sorter.add(p, t)
            yield from batched((item[2] for item in sorter.sorted()), size)
            self.sort_runs += sorter.run_count

    def children(self) -> List[Operator]:
        return [self.child]

    def explain_extras(self) -> List[str]:
        if not self.sort_runs:
            return []
        return [f"sort_runs={self.sort_runs}"]

    def label(self) -> str:
        direction = "DESC" if self.descending else "ASC"
        return f"SortByProbability({direction})"


class Sort(Operator):
    """ORDER BY over certain columns (materialising).

    With ``ModelConfig.work_mem`` set, the batch path runs an external
    merge sort: sorted runs spill to disk whenever the buffered input
    exceeds the budget and are merged back by ``(key, sequence)`` — the
    exact order of the stable in-memory sort, tuple ids untouched.
    """

    def __init__(
        self,
        child: Operator,
        attrs: Sequence[str],
        descending: bool = False,
        config: ModelConfig = DEFAULT_CONFIG,
    ):
        for a in attrs:
            if not child.output_schema.has_column(a) or child.output_schema.is_uncertain(a):
                raise QueryError(f"ORDER BY needs certain columns; {a!r} is not")
        self.child = child
        self.attrs = list(attrs)
        self.descending = descending
        self.config = config
        self.output_schema = child.output_schema
        #: EXPLAIN ANALYZE: spilled runs merged by the external sort path
        self.sort_runs = 0

    def __iter__(self) -> Iterator[ProbabilisticTuple]:
        rows = list(self.child)
        return iter(self._sorted(rows))

    def _key(self, t: ProbabilisticTuple) -> Tuple:
        # None sorts last, ascending order by default.
        return tuple(
            (t.certain.get(a) is None, t.certain.get(a)) for a in self.attrs
        )

    def _sorted(self, rows: List[ProbabilisticTuple]) -> List[ProbabilisticTuple]:
        rows.sort(key=self._key, reverse=self.descending)
        return rows

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[TupleBatch]:
        work_mem = self.config.work_mem or 0
        if work_mem:
            return self._external_batches(size, work_mem)
        rows = self._sorted(list(flatten(self.child.batches(size))))
        return batched(rows, size)

    def _external_batches(self, size: int, work_mem: int) -> Iterator[TupleBatch]:
        with SpillManager(self.config.spill_dir, label="sort") as mgr:
            sorter = ExternalSorter(mgr, work_mem, descending=self.descending)
            for t in flatten(self.child.batches(size)):
                sorter.add(self._key(t), t)
            yield from batched((item[2] for item in sorter.sorted()), size)
            self.sort_runs += sorter.run_count

    def children(self) -> List[Operator]:
        return [self.child]

    def explain_extras(self) -> List[str]:
        if not self.sort_runs:
            return []
        return [f"sort_runs={self.sort_runs}"]

    def label(self) -> str:
        direction = " DESC" if self.descending else ""
        return f"Sort({', '.join(self.attrs)}{direction})"


class Limit(Operator):
    """LIMIT n [OFFSET m]."""

    def __init__(self, child: Operator, count: int, offset: int = 0):
        if count < 0:
            raise QueryError("LIMIT must be non-negative")
        if offset < 0:
            raise QueryError("OFFSET must be non-negative")
        self.child = child
        self.count = count
        self.offset = offset
        self.output_schema = child.output_schema

    def __iter__(self) -> Iterator[ProbabilisticTuple]:
        for i, t in enumerate(self.child):
            if i < self.offset:
                continue
            if i >= self.offset + self.count:
                return
            yield t

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[TupleBatch]:
        start, end = self.offset, self.offset + self.count
        seen = 0
        if self.count == 0:
            return
        for batch in self.child.batches(size):
            lo = max(start - seen, 0)
            hi = min(end - seen, len(batch.tuples))
            seen += len(batch.tuples)
            if hi > lo:
                yield TupleBatch(batch.tuples[lo:hi])
            if seen >= end:
                return

    def children(self) -> List[Operator]:
        return [self.child]

    def label(self) -> str:
        suffix = f" OFFSET {self.offset}" if self.offset else ""
        return f"Limit({self.count}{suffix})"
