"""Morsel-driven parallel execution over the batch pipeline.

The paper's operators are embarrassingly parallel across tuples once
batched: selection floors, PROB thresholds and projection are per-tuple,
and the vectorized probability kernels already process whole batches per
call.  This module splits a plan into *morsels* — page-grain fragments of
the leaf scans — and runs the per-morsel operator chain
(``Scan -> Filter/Threshold -> Project``) on a worker pool:

* :func:`parallelize_plan` rewrites an operator tree for
  ``ModelConfig.workers > 1``.  Maximal chains of order-preserving
  per-tuple operators over a splittable scan become a
  :class:`Gather` over an :class:`Exchange`; hash joins become a
  partitioned parallel build+probe; nested-loop joins parallelize over
  left morsels against a shared materialized right.  Blocking operators
  (sorts, limits, aggregates) stay serial with their inputs rewritten.
* :class:`Exchange` runs one plan-fragment clone per morsel on the pool
  and emits the fragment outputs **in morsel index order** — the morsels
  partition the scan in page order, and every chained operator is
  element-wise, so the concatenation equals the serial output exactly
  (tuple ids included).
* Parallel joins tag each surviving pair with its ``(left_seq,
  right_seq)`` position, sort the merged stream by tag (reproducing the
  serial probe order) and renumber tuple ids deterministically at the
  gather.  Join output ids differ from the serial pipeline's — serial
  draws an id per *candidate* pair — but are identical across worker
  counts.

Backends: ``"thread"`` (default) uses a thread pool — the numpy/scipy
kernel sweeps release the GIL, so batched symbolic workloads overlap;
``"process"`` forks a pool per exchange for pure-python pdf paths (tasks
are inherited through ``fork``; only results are pickled back).  Where
``fork`` is unavailable the process backend silently degrades to threads.

``workers=1`` never rewrites anything: the plan runs the exact PR-2
pipeline, bitwise identical.
"""

from __future__ import annotations

import copy
import math
import multiprocessing
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ...core.model import ModelConfig, ProbabilisticTuple
from .aggregate import Aggregate, Distinct, GroupAggregate
from .base import Operator
from .batch import DEFAULT_BATCH_SIZE, TupleBatch, batched, flatten
from .compute import Compute
from ...core.columnar import ColumnarSegment
from .columnar import ColumnarBatch
from .relational import (
    Filter,
    HashJoin,
    Limit,
    NestedLoopJoin,
    ProbFilter,
    Project,
    RenameOp,
    Scalarize,
    Sort,
    SortByProbability,
    ThresholdFilter,
    _merge_pair,
    _rename_tuple,
)
from .scan import BTreeScan, PtiScan, RelationScan, SeqScan, SpatialScan

__all__ = [
    "Exchange",
    "Gather",
    "ParallelHashJoin",
    "ParallelNestedLoopJoin",
    "parallelize_plan",
    "reset_run_stats",
    "last_run_stats",
]


# ---------------------------------------------------------------------------
# Per-run statistics
# ---------------------------------------------------------------------------

_STATS_LOCK = threading.Lock()
_RUN_STATS: List[Dict] = []


def reset_run_stats() -> None:
    """Clear the per-query fragment statistics (called by execute_plan)."""
    with _STATS_LOCK:
        _RUN_STATS.clear()


def _record_stats(entries: Sequence[Dict]) -> None:
    with _STATS_LOCK:
        _RUN_STATS.extend(entries)


def last_run_stats() -> Optional[Dict]:
    """Aggregated morsel/worker statistics of the last parallel run.

    ``None`` when the last query ran serially.  The per-worker rows feed
    the bench reporting layer (``print_parallel_stats``).
    """
    with _STATS_LOCK:
        entries = list(_RUN_STATS)
    if not entries:
        return None
    workers: Dict[str, Dict[str, float]] = {}
    for e in entries:
        row = workers.setdefault(
            e["worker"], {"morsels": 0, "tuples": 0, "elapsed": 0.0}
        )
        row["morsels"] += 1
        row["tuples"] += e["tuples"]
        row["elapsed"] += e["elapsed"]
    return {
        "morsels": len(entries),
        "tuples": sum(e["tuples"] for e in entries),
        "busy_time": sum(e["elapsed"] for e in entries),
        "stages": sorted({e["stage"] for e in entries}),
        "per_worker": workers,
    }


def _worker_name() -> str:
    return f"pid{os.getpid()}/{threading.current_thread().name}"


# ---------------------------------------------------------------------------
# The worker pool
# ---------------------------------------------------------------------------

#: Task registry inherited by forked children; only indices cross the pipe.
_FORK_TASKS: List[Callable] = []


def _call_fork_task(i: int):
    return _FORK_TASKS[i]()


def _fork_available() -> bool:
    try:
        multiprocessing.get_context("fork")
        return True
    except ValueError:
        return False


class _WorkerPool:
    """Runs zero-arg tasks and returns their payloads in submission order.

    Every task returns ``(payload, stats_entry)``; stats are recorded
    centrally so the fork backend (where children cannot reach the parent's
    collector) behaves like the thread backend.
    """

    def __init__(self, config: ModelConfig):
        self.workers = max(1, int(getattr(config, "workers", 1) or 1))
        backend = getattr(config, "parallel_backend", "thread") or "thread"
        if backend == "process" and not _fork_available():
            backend = "thread"
        self.backend = backend

    def run_ordered(self, tasks: Sequence[Callable]) -> List:
        if not tasks:
            return []
        if self.workers == 1 or len(tasks) == 1:
            results = [task() for task in tasks]
        elif self.backend == "process":
            results = self._run_forked(tasks)
        else:
            with ThreadPoolExecutor(
                max_workers=min(self.workers, len(tasks))
            ) as pool:
                futures = [pool.submit(task) for task in tasks]
                results = [f.result() for f in futures]
        _record_stats([stats for _, stats in results])
        return [payload for payload, _ in results]

    def _run_forked(self, tasks: Sequence[Callable]) -> List:
        ctx = multiprocessing.get_context("fork")
        global _FORK_TASKS
        previous = _FORK_TASKS
        _FORK_TASKS = list(tasks)
        try:
            with ctx.Pool(processes=min(self.workers, len(tasks))) as pool:
                return pool.map(_call_fork_task, range(len(tasks)))
        finally:
            _FORK_TASKS = previous


# ---------------------------------------------------------------------------
# Morsel scans: leaf fragments over a subset of the input
# ---------------------------------------------------------------------------


class _PageMorselScan(Operator):
    """SeqScan restricted to a page-id subset (one morsel).

    Carries the originating scan's pruner so lazy per-tuple pruning keeps
    working inside each morsel (page-level pruning already happened when
    the candidate pages were split into morsels).
    """

    def __init__(self, table, page_ids: List[int], pruner=None, columnar: bool = True):
        self.table = table
        self.page_ids = page_ids
        self.pruner = pruner
        self.columnar = columnar
        self.output_schema = table.schema

    def __iter__(self) -> Iterator[ProbabilisticTuple]:
        return flatten(self.batches())

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[TupleBatch]:
        if self.columnar:
            # Same direct page-to-segment decode as the serial SeqScan.
            for chunk, seg in self.table.scan_segments(
                size, page_ids=self.page_ids, pruner=self.pruner
            ):
                yield ColumnarBatch(chunk, seg, 0)
            return
        for chunk in self.table.scan_batches(
            size, page_ids=self.page_ids, pruner=self.pruner
        ):
            yield TupleBatch(chunk)

    def label(self) -> str:
        return f"PageMorselScan({self.table.name}, {len(self.page_ids)} pages)"


class _ListMorselScan(Operator):
    """RelationScan restricted to a tuple slice (one morsel).

    With ``columnar`` on, the fragment builds its own per-morsel
    :class:`~repro.core.columnar.ColumnarSegment` — the gather runs on the
    worker, so parameter-array construction parallelizes with the rest of
    the fragment chain.
    """

    def __init__(self, tuples: List[ProbabilisticTuple], schema, columnar: bool = True):
        self.tuples = tuples
        self.columnar = columnar
        self.output_schema = schema

    def __iter__(self) -> Iterator[ProbabilisticTuple]:
        return iter(self.tuples)

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[TupleBatch]:
        if self.columnar:
            seg = ColumnarSegment(self.tuples)
            for start in range(0, len(self.tuples), size):
                yield ColumnarBatch(seg.tuples[start : start + size], seg, start)
            return
        for start in range(0, len(self.tuples), size):
            yield TupleBatch(self.tuples[start : start + size])

    def label(self) -> str:
        return f"ListMorselScan({len(self.tuples)} tuples)"


class _RidMorselScan(Operator):
    """Index scan restricted to an RID subset (one morsel, order-preserving)."""

    def __init__(self, table, rids: List, schema, columnar: bool = True):
        self.table = table
        self.rids = rids
        self.columnar = columnar
        self.output_schema = schema

    def __iter__(self) -> Iterator[ProbabilisticTuple]:
        return self.table.read_grouped(iter(self.rids))

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[TupleBatch]:
        for batch in batched(iter(self), size):
            yield ColumnarBatch(batch.tuples) if self.columnar else batch

    def label(self) -> str:
        return f"RidMorselScan({self.table.name}, {len(self.rids)} rids)"


def _chunk_size(total: int, workers: int, morsel_size: int) -> int:
    """Items per morsel: the configured target, capped so that every worker
    gets work whenever the input is large enough."""
    per = max(1, int(morsel_size))
    return max(1, min(per, math.ceil(total / max(1, workers))))


def _split_source(
    leaf: Operator, config: ModelConfig
) -> Optional[List[Callable[[], Operator]]]:
    """Factories producing one morsel-scan per fragment, in input order.

    ``None`` means the leaf is not splittable (unknown type, or too small
    to be worth fanning out); the caller keeps the chain serial.  The
    factories are lazy so index-scan RID lists materialize at run time,
    not at plan time.
    """
    workers = config.workers
    if isinstance(leaf, SeqScan):
        table = leaf.table
        # Pages pruned by the scan's synopsis tests never become morsels.
        page_ids = leaf.candidate_page_ids()
        if len(page_ids) < 2:
            return None
        rows_per_page = max(1.0, len(table.heap) / max(1, table.heap.num_pages))
        per = _chunk_size(
            len(page_ids), workers, max(1, int(config.morsel_size / rows_per_page))
        )
        chunks = [page_ids[i : i + per] for i in range(0, len(page_ids), per)]
        if len(chunks) < 2:
            return None
        pruner = leaf.pruner
        columnar = config.columnar
        return [
            (lambda c=chunk: _PageMorselScan(table, c, pruner, columnar))
            for chunk in chunks
        ]
    if isinstance(leaf, RelationScan):
        tuples = leaf.relation.tuples
        if len(tuples) < 2:
            return None
        per = _chunk_size(len(tuples), workers, config.morsel_size)
        chunks = [tuples[i : i + per] for i in range(0, len(tuples), per)]
        if len(chunks) < 2:
            return None
        schema = leaf.output_schema
        columnar = config.columnar
        return [
            (lambda c=chunk: _ListMorselScan(c, schema, columnar)) for chunk in chunks
        ]
    if isinstance(leaf, (BTreeScan, PtiScan, SpatialScan)):
        rids = list(leaf._rids())
        if len(rids) < 2:
            return None
        per = _chunk_size(len(rids), workers, config.morsel_size)
        chunks = [rids[i : i + per] for i in range(0, len(rids), per)]
        if len(chunks) < 2:
            return None
        table, schema = leaf.table, leaf.output_schema
        columnar = config.columnar
        return [
            (lambda c=chunk: _RidMorselScan(table, c, schema, columnar))
            for chunk in chunks
        ]
    return None


# ---------------------------------------------------------------------------
# Exchange / Gather
# ---------------------------------------------------------------------------


def _rebuild_chain(chain: Sequence[Operator], source: Operator) -> Operator:
    """Re-child a (top-down) chain of per-tuple operators onto ``source``.

    Shallow copies share the precomputed plans (SelectionPlan etc.) —
    they are read-only during execution, so fragment clones can share
    them across workers.
    """
    plan = source
    for op in reversed(chain):
        clone = copy.copy(op)
        clone.child = plan
        plan = clone
    return plan


class Exchange(Operator):
    """Runs one per-morsel fragment per worker and merges the streams.

    Each fragment is the operator chain re-built over one morsel scan.
    Fragment outputs are emitted in **morsel index order** — since the
    morsels partition the input in scan order and every chained operator
    is per-tuple and order-preserving, that concatenation equals the
    serial pipeline output exactly.
    """

    def __init__(
        self,
        chain: Sequence[Operator],
        fragment_factories: Sequence[Callable[[], Operator]],
        config: ModelConfig,
        source: Optional[Operator] = None,
    ):
        self.chain = list(chain)
        self.fragment_factories = list(fragment_factories)
        self.config = config
        self.source = source
        self.output_schema = (
            self.chain[0].output_schema
            if self.chain
            else (source.output_schema if source is not None else None)
        )

    def fragment_outputs(self, size: int) -> List[List[ProbabilisticTuple]]:
        """One tuple-list per morsel, in morsel order (pool-executed)."""
        chain = self.chain
        stage = self.label()

        def make_task(index: int, factory: Callable[[], Operator]):
            def run():
                start = time.perf_counter()
                fragment = _rebuild_chain(chain, factory())
                tuples = [t for batch in fragment.batches(size) for t in batch.tuples]
                return tuples, {
                    "worker": _worker_name(),
                    "morsel": index,
                    "tuples": len(tuples),
                    "elapsed": time.perf_counter() - start,
                    "stage": stage,
                }

            return run

        tasks = [make_task(i, f) for i, f in enumerate(self.fragment_factories)]
        return _WorkerPool(self.config).run_ordered(tasks)

    def __iter__(self) -> Iterator[ProbabilisticTuple]:
        for tuples in self.fragment_outputs(self.config.batch_size or DEFAULT_BATCH_SIZE):
            yield from tuples

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[TupleBatch]:
        return batched(iter(self), size)

    def children(self) -> List[Operator]:
        return [self.source] if self.source is not None else []

    def label(self) -> str:
        inner = " -> ".join(type(op).__name__ for op in reversed(self.chain)) or "Scan"
        return (
            f"Exchange({len(self.fragment_factories)} morsels x {inner}, "
            f"{self.config.workers} workers)"
        )


class Gather(Operator):
    """Merge point above an :class:`Exchange`: re-chunks the ordered
    fragment streams into pipeline batches.

    The determinism guarantee lives here: fragments arrive in morsel
    index order regardless of worker scheduling, so downstream operators
    observe the same tuple sequence as the serial pipeline.
    """

    def __init__(self, exchange: Exchange):
        self.exchange = exchange
        self.output_schema = exchange.output_schema

    def __iter__(self) -> Iterator[ProbabilisticTuple]:
        return iter(self.exchange)

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[TupleBatch]:
        buf: List[ProbabilisticTuple] = []
        for tuples in self.exchange.fragment_outputs(size):
            buf.extend(tuples)
            while len(buf) >= size:
                yield TupleBatch(buf[:size])
                buf = buf[size:]
        if buf:
            yield TupleBatch(buf)

    def children(self) -> List[Operator]:
        return [self.exchange]

    def label(self) -> str:
        return "Gather(ordered)"


# ---------------------------------------------------------------------------
# Parallel joins
# ---------------------------------------------------------------------------


def _join_pairs_task(
    plan,
    store,
    left_part: List[Tuple[int, ProbabilisticTuple]],
    right_buckets: Dict[object, List[Tuple[int, ProbabilisticTuple]]],
    left_key: str,
    size: int,
    index: int,
    stage: str,
):
    """Probe one partition: pair, select, and tag the survivors.

    Pairs carry a placeholder tuple id (0); the gather renumbers the
    sorted survivor stream so ids are deterministic and unique.  Output
    tags are ``(left_seq, right_seq)`` — the serial pipeline probes left
    tuples in order and bucket entries in right-scan order, so sorting
    the merged tags reproduces its output order exactly.
    """

    def run():
        start = time.perf_counter()
        out: List[Tuple[int, int, ProbabilisticTuple]] = []
        tags: List[Tuple[int, int]] = []
        pending: List[ProbabilisticTuple] = []

        def drain():
            results = plan.apply_batch(pending, store)
            for tag, result in zip(tags, results):
                if result is not None:
                    out.append((tag[0], tag[1], result))
            del tags[:], pending[:]

        for lseq, tl in left_part:
            key = tl.certain.get(left_key)
            if key is None:
                continue
            for rseq, tr in right_buckets.get(key, ()):
                tags.append((lseq, rseq))
                pending.append(_merge_pair(tl, tr, 0))
                if len(pending) >= size:
                    drain()
        if pending:
            drain()
        return out, {
            "worker": _worker_name(),
            "morsel": index,
            "tuples": len(out),
            "elapsed": time.perf_counter() - start,
            "stage": stage,
        }

    return run


class _ParallelJoinBase(Operator):
    """Shared gather logic: sort survivor tags, renumber, re-chunk."""

    join: Operator

    def __init__(self, join: Operator, config: ModelConfig):
        self.join = join
        self.config = config
        self.output_schema = join.output_schema

    def _gather(
        self, tagged: List[List[Tuple[int, int, ProbabilisticTuple]]], size: int
    ) -> Iterator[TupleBatch]:
        merged = [item for part in tagged for item in part]
        merged.sort(key=lambda item: (item[0], item[1]))
        store = self.join.store
        out: List[ProbabilisticTuple] = []
        for _, _, t in merged:
            t.tuple_id = store.new_tuple_id()
            out.append(t)
        for start in range(0, len(out), size):
            yield TupleBatch(out[start : start + size])

    def __iter__(self) -> Iterator[ProbabilisticTuple]:
        return flatten(self.batches(self.config.batch_size or DEFAULT_BATCH_SIZE))

    def children(self) -> List[Operator]:
        return self.join.children()


class ParallelHashJoin(_ParallelJoinBase):
    """Partitioned parallel hash join: both sides are split by the hash of
    the certain key, one worker builds and probes each partition."""

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[TupleBatch]:
        join = self.join
        left = list(flatten(join.left.batches(size)))
        right = list(flatten(join.right.batches(size)))
        probe_key = join._renames.get(join.right_key, join.right_key)
        partitions = max(1, min(self.config.workers, len(left) or 1))

        left_parts: List[List[Tuple[int, ProbabilisticTuple]]] = [
            [] for _ in range(partitions)
        ]
        for seq, tl in enumerate(left):
            key = tl.certain.get(join.left_key)
            if key is not None:
                left_parts[hash(key) % partitions].append((seq, tl))

        right_parts: List[Dict[object, List[Tuple[int, ProbabilisticTuple]]]] = [
            {} for _ in range(partitions)
        ]
        for seq, tr in enumerate(right):
            renamed = _rename_tuple(tr, join._renames)
            key = renamed.certain.get(probe_key)
            if key is not None:
                right_parts[hash(key) % partitions].setdefault(key, []).append(
                    (seq, renamed)
                )

        stage = self.label()
        tasks = [
            _join_pairs_task(
                join.plan,
                join.store,
                left_parts[p],
                right_parts[p],
                join.left_key,
                size,
                p,
                stage,
            )
            for p in range(partitions)
            if left_parts[p] and right_parts[p]
        ]
        tagged = _WorkerPool(self.config).run_ordered(tasks)
        yield from self._gather(tagged, size)

    def label(self) -> str:
        join = self.join
        return (
            f"ParallelHashJoin({join.left_key} = {join.right_key}, "
            f"{self.config.workers} workers)"
        )


class ParallelNestedLoopJoin(_ParallelJoinBase):
    """Nested-loop join parallelized over left morsels; the right side is
    materialized (and renamed) once and shared by every worker."""

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[TupleBatch]:
        join = self.join
        inner = [
            _rename_tuple(t, join._renames)
            for t in flatten(join.right.batches(size))
        ]
        left = list(flatten(join.left.batches(size)))
        per = _chunk_size(len(left), self.config.workers, self.config.morsel_size)

        stage = self.label()
        tasks = []
        for index, start in enumerate(range(0, len(left), per)):
            chunk = [(start + k, tl) for k, tl in enumerate(left[start : start + per])]
            tasks.append(
                _nested_loop_task(
                    join.plan, join.store, chunk, inner, size, index, stage
                )
            )
        tagged = _WorkerPool(self.config).run_ordered(tasks)
        yield from self._gather(tagged, size)

    def label(self) -> str:
        return f"ParallelNestedLoopJoin({self.config.workers} workers)"


def _nested_loop_task(
    plan,
    store,
    left_chunk: List[Tuple[int, ProbabilisticTuple]],
    inner: List[ProbabilisticTuple],
    size: int,
    index: int,
    stage: str,
):
    def run():
        start = time.perf_counter()
        out: List[Tuple[int, int, ProbabilisticTuple]] = []
        tags: List[Tuple[int, int]] = []
        pending: List[ProbabilisticTuple] = []

        def drain():
            results = plan.apply_batch(pending, store)
            for tag, result in zip(tags, results):
                if result is not None:
                    out.append((tag[0], tag[1], result))
            del tags[:], pending[:]

        for lseq, tl in left_chunk:
            for rseq, tr in enumerate(inner):
                tags.append((lseq, rseq))
                pending.append(_merge_pair(tl, tr, 0))
                if len(pending) >= size:
                    drain()
        if pending:
            drain()
        return out, {
            "worker": _worker_name(),
            "morsel": index,
            "tuples": len(out),
            "elapsed": time.perf_counter() - start,
            "stage": stage,
        }

    return run


# ---------------------------------------------------------------------------
# Plan rewriting
# ---------------------------------------------------------------------------

#: Per-tuple, order-preserving operators safe to clone into morsel fragments.
_MAPPABLE = (Filter, Project, Compute, Scalarize, RenameOp, ProbFilter, ThresholdFilter)

#: Single-child operators that must see the whole input (kept serial).
_BLOCKING = (Sort, SortByProbability, Limit, Distinct, Aggregate, GroupAggregate)


def parallelize_plan(plan: Operator, config: ModelConfig) -> Operator:
    """Rewrite ``plan`` for morsel-driven parallel execution.

    Identity when ``config.workers <= 1`` or nothing in the tree is
    splittable.  The rewritten plan produces the same tuple stream as the
    input plan (join tuple ids excepted — see the module docstring).
    """
    if getattr(config, "workers", 1) <= 1:
        return plan

    chain: List[Operator] = []
    cur = plan
    while isinstance(cur, _MAPPABLE):
        chain.append(cur)
        cur = cur.child

    fragments = _split_source(cur, config)
    if fragments is not None:
        return Gather(Exchange(chain, fragments, config, source=cur))

    if isinstance(cur, (HashJoin, NestedLoopJoin)) and (config.work_mem or 0):
        # Memory-bounded joins stay serial (the Grace spill path owns the
        # budget and the id stream) but their inputs still parallelize —
        # spilled ≡ in-memory identity is preserved under workers > 1.
        return _rebuild_chain(chain, _rechild_join(cur, config))
    if isinstance(cur, HashJoin):
        return _rebuild_chain(
            chain, ParallelHashJoin(_rechild_join(cur, config), config)
        )
    if isinstance(cur, NestedLoopJoin):
        return _rebuild_chain(
            chain, ParallelNestedLoopJoin(_rechild_join(cur, config), config)
        )
    if isinstance(cur, _BLOCKING):
        clone = copy.copy(cur)
        clone.child = parallelize_plan(cur.child, config)
        return _rebuild_chain(chain, clone)
    # Unsplittable leaf (tiny table, unknown operator): keep serial.
    return plan


def _rechild_join(join: Operator, config: ModelConfig) -> Operator:
    """Clone a join with its inputs parallelized (materialization of each
    side then runs through Gather/Exchange too)."""
    clone = copy.copy(join)
    clone.left = parallelize_plan(join.left, config)
    clone.right = parallelize_plan(join.right, config)
    return clone
