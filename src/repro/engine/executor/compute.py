"""Compute operator: certain-column arithmetic as ufunc sweeps.

``Compute(child, [(expr, name), ...])`` appends one certain REAL column per
item, evaluated over the tuple's certain attributes.  It is per-tuple and
order-preserving (ids pass through untouched, like projection), so the
parallel executor maps it over morsels freely.

With ``ModelConfig.columnar`` on and a batch that can serve float64 column
views, each expression evaluates as one vectorized sweep over the whole
batch — ``compute_kernels`` in EXPLAIN ANALYZE counts those sweeps.  Rows a
column view cannot express fall back to the scalar evaluator; both paths
compute in IEEE float64, so results are bitwise identical.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ...core.expr import Expr
from ...core.history import HistoryStore
from ...core.model import (
    DEFAULT_CONFIG,
    Column,
    DataType,
    ModelConfig,
    ProbabilisticSchema,
    ProbabilisticTuple,
)
from ...errors import QueryError
from .base import Operator
from .batch import DEFAULT_BATCH_SIZE, TupleBatch, batched, flatten
from .columnar import ColumnarBatch

__all__ = ["Compute"]


class Compute(Operator):
    """Append computed certain columns: ``SELECT *, expr AS name``."""

    def __init__(
        self,
        child: Operator,
        items: Sequence[Tuple[Expr, str]],
        store: HistoryStore,
        config: ModelConfig = DEFAULT_CONFIG,
    ):
        if not items:
            raise QueryError("Compute needs at least one expression")
        schema = child.output_schema
        taken = set(schema.visible_attrs) | schema.phantom_attrs
        for expr, name in items:
            for attr in sorted(expr.attrs()):
                if not schema.has_column(attr):
                    raise QueryError(f"unknown column {attr!r} in expression")
                if schema.is_uncertain(attr):
                    raise QueryError(
                        f"arithmetic needs certain columns; {attr!r} is "
                        "uncertain (pdf arithmetic lives in repro.pdf)"
                    )
            if name in taken:
                raise QueryError(f"computed column {name!r} already exists")
            taken.add(name)
        self.child = child
        self.items = list(items)
        self.store = store
        self.config = config
        self.compute_kernels = 0
        new_columns = [Column(name, DataType.REAL) for _, name in self.items]
        self.output_schema = ProbabilisticSchema(
            list(schema.columns) + new_columns, list(schema.dependency)
        )

    # -- evaluation ---------------------------------------------------------

    def _apply_scalar(self, t: ProbabilisticTuple) -> ProbabilisticTuple:
        certain = dict(t.certain)
        for expr, name in self.items:
            certain[name] = expr.evaluate(certain)
        return ProbabilisticTuple(t.tuple_id, certain, t.pdfs, t.lineage)

    def _apply_batch(self, batch: TupleBatch) -> List[ProbabilisticTuple]:
        tuples = batch.tuples
        n = len(tuples)
        if not (
            self.config.columnar and isinstance(batch, ColumnarBatch) and n
        ):
            return [self._apply_scalar(t) for t in tuples]

        def getcol(attr: str):
            col = batch.certain_column(attr)
            if col is None or len(col[0]) != n:  # stale segment snapshot
                return None
            return col

        columns = []
        for expr, name in self.items:
            out = expr.evaluate_vector(getcol)
            if out is None:
                return [self._apply_scalar(t) for t in tuples]
            vals = np.broadcast_to(np.asarray(out[0], dtype=float), (n,))
            mask = (
                np.zeros(n, dtype=bool)
                if out[1] is False
                else np.broadcast_to(np.asarray(out[1], dtype=bool), (n,))
            )
            columns.append((name, vals, mask))
            self.compute_kernels += 1

        results = []
        for i, t in enumerate(tuples):
            certain = dict(t.certain)
            for name, vals, mask in columns:
                certain[name] = None if mask[i] else float(vals[i])
            results.append(
                ProbabilisticTuple(t.tuple_id, certain, t.pdfs, t.lineage)
            )
        return results

    # -- operator protocol --------------------------------------------------

    def __iter__(self) -> Iterator[ProbabilisticTuple]:
        return flatten(self.batches(self.config.batch_size or DEFAULT_BATCH_SIZE))

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[TupleBatch]:
        for batch in self.child.batches(size):
            yield TupleBatch(self._apply_batch(batch))

    def children(self) -> List[Operator]:
        return [self.child]

    def explain_extras(self) -> List[str]:
        if not self.compute_kernels:
            return []
        return [f"compute_kernels={self.compute_kernels}"]

    def label(self) -> str:
        items = ", ".join(f"{expr!r} AS {name}" for expr, name in self.items)
        return f"Compute({items})"
