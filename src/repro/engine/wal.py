"""Write-ahead logging, transactions, checkpoints, and crash recovery.

Durability follows the classic redo-only WAL design, specialised to the
probabilistic data model: a log record carries everything the paper's
history mechanism needs to rebuild PWS-consistent state — the full pdf
payloads, the dependency-set membership, and the ancestor ids of every
inserted tuple — so that replaying the committed prefix reconstructs heap
pages, secondary indexes, page synopses, *and* the history store (Λ)
exactly as a never-crashed database would hold them.

Protocol
--------

* Mutations inside a transaction apply to the live engine immediately but
  are only *buffered* as logical redo records.  ``COMMIT`` writes the whole
  transaction — op frames followed by a commit frame — as one contiguous
  append, then fsyncs (every transaction when ``group_commit=1``, every
  N-th otherwise).  A crash mid-transaction therefore leaves nothing of it
  in the log.
* Every frame is length-prefixed and CRC-checked::

      <I payload_len> <I crc32(payload)> <payload>
      payload = <B op> <Q txn_id> <op-specific body>

  The transaction id doubles as the commit LSN — ids are drawn at commit
  time, so log order, commit order, and id order coincide.
* A checkpoint folds the log into the snapshot format: the whole database
  is serialized into ``data.ckpt`` (a container embedding the ordinary
  snapshot, written to a temp file then ``os.replace``d), and the log is reset to an
  empty one whose header carries the checkpoint's LSN.  Recovery skips any
  logged transaction with ``lsn <= checkpoint lsn`` — the guard that makes
  a crash between the checkpoint rename and the log reset harmless.
* Recovery scans the log, stops at the first torn or CRC-bad frame,
  replays committed transactions in order, truncates the torn/uncommitted
  suffix, then rebuilds derived state (synopses via the replayed inserts,
  planner statistics by re-running ``ANALYZE`` for analyzed tables).

Undo is in-memory only (``ROLLBACK`` / statement failure): each hook
stashes a precise undo entry — including copies of the history-store
entries a ``DELETE`` phantomises — so an aborted transaction leaves state
indistinguishable from one that never ran.

Every OS-visible step calls into :mod:`repro.engine.faults`, which is how
the crash-matrix suite in ``tests/fault/`` exercises each window.
"""

from __future__ import annotations

import io
import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.history import AncestorRef, HistoryStore, _Entry
from ..errors import TransactionError, WalError
from . import faults
from .snapshot import decode_schema, encode_schema, read_snapshot, write_snapshot
from .storage.serialize import decode_tuple, encode_tuple

__all__ = [
    "WriteAheadLog",
    "TransactionManager",
    "Record",
    "open_durable",
    "write_checkpoint",
    "scan_wal",
]

WAL_MAGIC = b"RWAL"
WAL_VERSION = 1
CKPT_MAGIC = b"RPCK"
CKPT_VERSION = 1

#: sanity bound on a frame payload; anything larger is treated as torn junk
_MAX_FRAME = 1 << 31

# -- record ops --------------------------------------------------------------

OP_COMMIT = 2
OP_CREATE_TABLE = 3
OP_DROP_TABLE = 4
OP_CREATE_INDEX = 5
OP_INSERT = 6
OP_DELETE = 7
OP_ANALYZE = 8

#: INSERT flag bits
_F_BASE = 1      # a base-tuple insert (pdfs register as fresh ancestors)
_F_ACQUIRE = 2   # a derived insert that acquired its ancestor references


# -- body encoding helpers ---------------------------------------------------


def _b_str(s: str) -> bytes:
    raw = s.encode("utf-8")
    return struct.pack("<I", len(raw)) + raw


def _r_str(buf: bytes, off: int) -> Tuple[str, int]:
    (n,) = struct.unpack_from("<I", buf, off)
    off += 4
    return buf[off : off + n].decode("utf-8"), off + n


def _b_bytes(data: bytes) -> bytes:
    return struct.pack("<Q", len(data)) + data


def _r_bytes(buf: bytes, off: int) -> Tuple[bytes, int]:
    (n,) = struct.unpack_from("<Q", buf, off)
    off += 8
    return buf[off : off + n], off + n


@dataclass
class Record:
    """One decoded WAL record (fields are op-specific; unused ones default)."""

    op: int
    txn_id: int
    name: str = ""          # table name, or the ANALYZE target ("" = all)
    payload: bytes = b""    # encoded schema (CREATE_TABLE) / tuple (INSERT)
    flags: int = 0
    tuple_id: int = 0
    kind: str = ""          # index kind: btree | pti | spatial
    columns: Tuple[str, ...] = ()
    cell_size: float = 0.0


def decode_record(payload: bytes) -> Record:
    """Decode one frame payload into a :class:`Record`."""
    op, txn_id = struct.unpack_from("<BQ", payload, 0)
    off = 9
    if op == OP_COMMIT:
        return Record(op, txn_id)
    if op in (OP_DROP_TABLE, OP_ANALYZE):
        name, off = _r_str(payload, off)
        return Record(op, txn_id, name=name)
    if op == OP_CREATE_TABLE:
        name, off = _r_str(payload, off)
        schema, off = _r_bytes(payload, off)
        return Record(op, txn_id, name=name, payload=schema)
    if op == OP_CREATE_INDEX:
        name, off = _r_str(payload, off)
        kind, off = _r_str(payload, off)
        (n_cols,) = struct.unpack_from("<H", payload, off)
        off += 2
        columns = []
        for _ in range(n_cols):
            col, off = _r_str(payload, off)
            columns.append(col)
        (cell_size,) = struct.unpack_from("<d", payload, off)
        return Record(
            op, txn_id, name=name, kind=kind, columns=tuple(columns),
            cell_size=cell_size,
        )
    if op == OP_INSERT:
        name, off = _r_str(payload, off)
        (flags,) = struct.unpack_from("<B", payload, off)
        off += 1
        raw, off = _r_bytes(payload, off)
        return Record(op, txn_id, name=name, flags=flags, payload=raw)
    if op == OP_DELETE:
        name, off = _r_str(payload, off)
        (tuple_id,) = struct.unpack_from("<q", payload, off)
        return Record(op, txn_id, name=name, tuple_id=tuple_id)
    raise WalError(f"unknown WAL record op {op}")


def _frame(payload: bytes) -> bytes:
    return struct.pack("<II", len(payload), zlib.crc32(payload)) + payload


# -- the log file ------------------------------------------------------------


def _wal_header(base_lsn: int) -> bytes:
    return WAL_MAGIC + struct.pack("<IQ", WAL_VERSION, base_lsn)


_WAL_HEADER_SIZE = 16


class WriteAheadLog:
    """An append-only, CRC-framed redo log over one file."""

    def __init__(self, path: str, base_lsn: int = 0, group_commit: int = 1):
        self.path = path
        self.base_lsn = base_lsn
        self.group_commit = max(1, int(group_commit))
        #: the next transaction id / LSN to hand out (recovery advances it)
        self.next_lsn = base_lsn + 1
        self._f = None
        self._pending_sync = 0

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def create(
        cls, path: str, base_lsn: int = 0, group_commit: int = 1
    ) -> "WriteAheadLog":
        """Create a fresh (empty) log file with a durable header."""
        with open(path, "wb") as f:
            f.write(_wal_header(base_lsn))
            f.flush()
            os.fsync(f.fileno())
        return cls(path, base_lsn=base_lsn, group_commit=group_commit)

    def open_append(self) -> None:
        # Unbuffered on purpose: a write either reaches the OS or raises.
        # A Python-level buffer would survive a simulated crash and could
        # be flushed behind recovery's back when the object is collected.
        self._f = open(self.path, "ab", buffering=0)

    def close(self) -> None:
        if self._f is not None:
            self.sync()
            self._f.close()
            self._f = None

    def discard(self) -> None:
        """Drop the append handle without syncing (simulated process death)."""
        if self._f is not None:
            self._f.close()
            self._f = None

    # -- commits ------------------------------------------------------------

    def commit_txn(self, ops: List[Tuple[int, bytes]]) -> int:
        """Append one committed transaction and return its LSN.

        ``ops`` are ``(op, body)`` pairs buffered by the transaction
        manager; the whole transaction — op frames plus the trailing commit
        frame — is written as a single contiguous append so a torn write
        can only ever truncate it, never interleave it.
        """
        if self._f is None:
            raise WalError("write-ahead log is not open for appending")
        lsn = self.next_lsn
        self.next_lsn += 1
        parts = [_frame(struct.pack("<BQ", op, lsn) + body) for op, body in ops]
        parts.append(_frame(struct.pack("<BQ", OP_COMMIT, lsn)))
        buf = b"".join(parts)
        faults.reach("wal.append.before")
        faults.torn_write("wal.append.torn", self._f, buf)
        faults.reach("wal.append.after")
        self._f.flush()
        self._pending_sync += 1
        if self._pending_sync >= self.group_commit:
            self.sync()
        return lsn

    def sync(self) -> None:
        """fsync any commits still inside the group-commit window."""
        if self._f is None or self._pending_sync == 0:
            return
        faults.reach("wal.fsync.before")
        os.fsync(self._f.fileno())
        faults.reach("wal.fsync.after")
        self._pending_sync = 0

    # -- checkpoint reset ---------------------------------------------------

    def reset(self, base_lsn: int) -> None:
        """Replace the log with an empty one starting at ``base_lsn``.

        Written temp-then-rename: a crash leaves either the old log (whose
        transactions the checkpoint LSN guard will skip) or the new one.
        """
        if self._f is not None:
            self._f.close()
            self._f = None
        tmp = self.path + ".new"
        with open(tmp, "wb") as f:
            f.write(_wal_header(base_lsn))
            f.flush()
            os.fsync(f.fileno())
        faults.reach("wal.reset.before")
        os.replace(tmp, self.path)
        faults.reach("wal.reset.after")
        self.base_lsn = base_lsn
        self.next_lsn = max(self.next_lsn, base_lsn + 1)
        self._pending_sync = 0
        self.open_append()


def scan_wal(path: str) -> Tuple[int, List[Tuple[int, List[Record]]], int]:
    """Scan a log file -> (header base_lsn, committed txns, good byte end).

    Committed transactions come back in commit order as ``(lsn, records)``.
    Scanning stops at the first torn or CRC-bad frame; frames after the
    last commit boundary (a transaction whose commit frame never made it)
    are uncommitted and ignored.  ``good end`` is the file offset of the
    last committed boundary — the caller truncates the file there.
    """
    with open(path, "rb") as f:
        header = f.read(_WAL_HEADER_SIZE)
        if len(header) < _WAL_HEADER_SIZE or header[:4] != WAL_MAGIC:
            raise WalError(f"{path!r} is not a repro write-ahead log")
        version, base_lsn = struct.unpack_from("<IQ", header, 4)
        if version != WAL_VERSION:
            raise WalError(f"WAL version {version} != supported {WAL_VERSION}")
        offset = _WAL_HEADER_SIZE
        good_end = offset
        committed: List[Tuple[int, List[Record]]] = []
        pending: Dict[int, List[Record]] = {}
        while True:
            head = f.read(8)
            if len(head) < 8:
                break
            length, crc = struct.unpack("<II", head)
            if length > _MAX_FRAME:
                break
            payload = f.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                break
            offset += 8 + length
            record = decode_record(payload)
            if record.op == OP_COMMIT:
                committed.append((record.txn_id, pending.pop(record.txn_id, [])))
                good_end = offset
            else:
                pending.setdefault(record.txn_id, []).append(record)
    return base_lsn, committed, good_end


# -- undo entries ------------------------------------------------------------


@dataclass
class _UndoInsert:
    table: object
    rid: object
    t: object
    base: bool
    acquired: bool


@dataclass
class _UndoDelete:
    table: object
    rid: object
    raw: bytes
    t: object
    entries: Dict[AncestorRef, Optional[_Entry]]


@dataclass
class _UndoCreateTable:
    name: str


@dataclass
class _UndoDropTable:
    name: str
    table: object
    entries: Dict[AncestorRef, Optional[_Entry]]


@dataclass
class _UndoCreateIndex:
    table: object
    kind: str
    key: object


@dataclass
class _UndoAnalyze:
    prev: Dict[str, object] = field(default_factory=dict)


def _capture_entries(
    store: HistoryStore, t
) -> Dict[AncestorRef, Optional[_Entry]]:
    """Copies of every history entry a delete of ``t`` can touch.

    That is the refs its lineage links point at (``release`` may drop a
    drained phantom) plus every ref owned by its tuple id
    (``delete_base_tuple`` phantomises or removes them).
    """
    refs = set(store.refs_of_tuple(t.tuple_id))
    for lin in t.lineage.values():
        for link in lin:
            refs.add(link.ref)
    out: Dict[AncestorRef, Optional[_Entry]] = {}
    for ref in refs:
        entry = store._entries.get(ref)
        out[ref] = (
            None
            if entry is None
            else _Entry(pdf=entry.pdf, refcount=entry.refcount, alive=entry.alive)
        )
    return out


def _restore_entries(
    store: HistoryStore, entries: Dict[AncestorRef, Optional[_Entry]]
) -> None:
    for ref, entry in entries.items():
        if entry is None:
            if store._entries.pop(ref, None) is not None:
                store._index_discard(ref)
        else:
            store._entries[ref] = _Entry(
                pdf=entry.pdf, refcount=entry.refcount, alive=entry.alive
            )
            store._index_add(ref)


# -- the transaction manager -------------------------------------------------


class TransactionManager:
    """Per-catalog transaction state: redo buffering and precise undo.

    The engine's mutation paths call the ``on_*`` hooks; outside an active
    transaction (direct ``Table`` API use) and during recovery replay they
    are no-ops, so non-transactional code paths behave exactly as before.
    """

    def __init__(self, catalog):
        self.catalog = catalog
        #: attached by a durable Database; None keeps transactions in-memory
        self.wal: Optional[WriteAheadLog] = None
        self.active = False
        self.replaying = False
        self._ops: List[Tuple[int, bytes]] = []
        self._undo: List[object] = []
        self._saved_next_tuple_id = 0

    def __getstate__(self):
        # Worker processes of the parallel executor only read; the log's
        # file handle never crosses a process boundary.
        state = self.__dict__.copy()
        state["wal"] = None
        return state

    # -- lifecycle ----------------------------------------------------------

    def begin(self) -> None:
        if self.active:
            raise TransactionError("a transaction is already in progress")
        self.active = True
        self._ops = []
        self._undo = []
        self._saved_next_tuple_id = self.catalog.store._next_tuple_id

    def commit(self) -> Optional[int]:
        """Make the transaction durable; returns its LSN (None if no WAL).

        If the log append fails with an ordinary exception the transaction
        stays active so the caller can still ``abort()`` it; an
        :class:`~repro.engine.faults.InjectedCrash` propagates untouched —
        nothing survives a real power cut.
        """
        if not self.active:
            raise TransactionError("no transaction in progress")
        lsn = None
        if self.wal is not None and self._ops:
            lsn = self.wal.commit_txn(self._ops)
        self.active = False
        self._ops = []
        self._undo = []
        return lsn

    def abort(self) -> None:
        if not self.active:
            raise TransactionError("no transaction in progress")
        # Undoing a delete re-homes the record (pages never reuse slots), so
        # later-undone entries that captured the original rid must be pointed
        # at the restored location.
        remap: Dict[object, object] = {}
        for entry in reversed(self._undo):
            self._apply_undo(entry, remap)
        self.catalog.store._next_tuple_id = self._saved_next_tuple_id
        self.active = False
        self._ops = []
        self._undo = []

    def _recording(self) -> bool:
        return self.active and not self.replaying

    # -- mutation hooks ------------------------------------------------------

    def on_insert(self, table, rid, t, base: bool, acquired: bool = True) -> None:
        if not self._recording():
            return
        flags = (_F_BASE if base else 0) | (_F_ACQUIRE if acquired else 0)
        body = (
            _b_str(table.name)
            + struct.pack("<B", flags)
            + _b_bytes(encode_tuple(t, store_lineage=True))
        )
        self._ops.append((OP_INSERT, body))
        self._undo.append(_UndoInsert(table, rid, t, base, acquired))

    def on_delete(self, table, rid, t) -> None:
        """Called *before* the delete mutates anything."""
        if not self._recording():
            return
        raw = table.heap.read(rid)
        entries = _capture_entries(self.catalog.store, t)
        body = _b_str(table.name) + struct.pack("<q", t.tuple_id)
        self._ops.append((OP_DELETE, body))
        self._undo.append(_UndoDelete(table, rid, raw, t, entries))

    def on_create_table(self, table) -> None:
        if not self._recording():
            return
        body = _b_str(table.name) + _b_bytes(encode_schema(table.schema))
        self._ops.append((OP_CREATE_TABLE, body))
        self._undo.append(_UndoCreateTable(table.name))

    def on_drop_table(self, table) -> None:
        """Called *before* the catalog removes the table."""
        if not self._recording():
            return
        entries: Dict[AncestorRef, Optional[_Entry]] = {}
        for _rid, t in table.scan():
            for ref, entry in _capture_entries(self.catalog.store, t).items():
                entries.setdefault(ref, entry)
        self._ops.append((OP_DROP_TABLE, _b_str(table.name)))
        self._undo.append(_UndoDropTable(table.name, table, entries))

    def on_create_index(
        self, table, kind: str, attrs: Tuple[str, ...], cell_size: float = 0.0
    ) -> None:
        if not self._recording():
            return
        body = _b_str(table.name) + _b_str(kind)
        body += struct.pack("<H", len(attrs))
        for attr in attrs:
            body += _b_str(attr)
        body += struct.pack("<d", cell_size)
        self._ops.append((OP_CREATE_INDEX, body))
        key = attrs if kind == "spatial" else attrs[0]
        self._undo.append(_UndoCreateIndex(table, kind, key))

    def on_analyze(self, name: str, prev: Dict[str, object]) -> None:
        """``name`` is the analyzed table, or ``""`` for all tables."""
        if not self._recording():
            return
        self._ops.append((OP_ANALYZE, _b_str(name)))
        self._undo.append(_UndoAnalyze(prev=dict(prev)))

    # -- undo ---------------------------------------------------------------

    def _apply_undo(self, entry, remap: Optional[Dict[object, object]] = None) -> None:
        store = self.catalog.store
        if isinstance(entry, _UndoInsert):
            table, rid, t = entry.table, entry.rid, entry.t
            if remap is not None:
                rid = remap.get(rid, rid)
            table._index_delete(rid, t)
            syn = table.synopses.get(rid.page_id)
            if syn is not None:
                syn.remove()
            table.heap.delete(rid)
            if entry.base:
                for lin in t.lineage.values():
                    if lin:
                        store.release(lin)
                for pdf in t.pdfs.values():
                    if pdf is None:
                        continue
                    ref = AncestorRef(t.tuple_id, frozenset(pdf.attrs))
                    if store._entries.pop(ref, None) is not None:
                        store._index_discard(ref)
            elif entry.acquired:
                for lin in t.lineage.values():
                    if lin:
                        store.release(lin)
        elif isinstance(entry, _UndoDelete):
            _restore_entries(store, entry.entries)
            table, t = entry.table, entry.t
            rid = table.heap.insert(entry.raw)
            if remap is not None and rid != entry.rid:
                remap[entry.rid] = rid
            table._synopsis_insert(rid, t)
            table._index_insert(rid, t)
        elif isinstance(entry, _UndoCreateTable):
            self.catalog.tables.pop(entry.name.lower(), None)
        elif isinstance(entry, _UndoDropTable):
            self.catalog.tables[entry.name.lower()] = entry.table
            _restore_entries(store, entry.entries)
        elif isinstance(entry, _UndoCreateIndex):
            if entry.kind == "pti":
                entry.table.ptis.pop(entry.key, None)
            elif entry.kind == "spatial":
                entry.table.spatials.pop(entry.key, None)
            else:
                entry.table.btrees.pop(entry.key, None)
        elif isinstance(entry, _UndoAnalyze):
            for key, stats in entry.prev.items():
                table = self.catalog.tables.get(key)
                if table is not None:
                    table.statistics = stats


# -- recovery replay ---------------------------------------------------------


class _Replayer:
    """Applies committed redo records to a catalog during recovery."""

    def __init__(self, catalog):
        self.catalog = catalog
        self.max_tuple_id = 0
        #: (table key, tuple id) -> current RID, for replaying deletes
        self.rid_of: Dict[Tuple[str, int], object] = {}
        for key, table in catalog.tables.items():
            for rid, t in table.scan():
                self.rid_of[(key, t.tuple_id)] = rid
                self.max_tuple_id = max(self.max_tuple_id, t.tuple_id)

    def apply(self, record: Record) -> None:
        catalog = self.catalog
        store = catalog.store
        if record.op == OP_CREATE_TABLE:
            catalog.create_table(record.name, decode_schema(record.payload))
        elif record.op == OP_DROP_TABLE:
            key = record.name.lower()
            catalog.drop_table(record.name)
            self.rid_of = {
                k: v for k, v in self.rid_of.items() if k[0] != key
            }
        elif record.op == OP_CREATE_INDEX:
            table = catalog.get_table(record.name)
            if record.kind == "pti":
                table.create_pti_index(record.columns[0])
            elif record.kind == "spatial":
                table.create_spatial_index(
                    record.columns, cell_size=record.cell_size
                )
            else:
                table.create_btree_index(record.columns[0])
        elif record.op == OP_INSERT:
            table = catalog.get_table(record.name)
            t, _ = decode_tuple(record.payload)
            if record.flags & _F_BASE:
                for pdf in t.pdfs.values():
                    if pdf is not None:
                        store.register_base(t.tuple_id, pdf)
                for lin in t.lineage.values():
                    if lin:
                        store.acquire(lin)
            elif record.flags & _F_ACQUIRE:
                for lin in t.lineage.values():
                    if lin:
                        store.acquire(lin)
            rid = table.heap.insert(
                encode_tuple(t, store_lineage=table.store_lineage)
            )
            table._synopsis_insert(rid, t)
            table._index_insert(rid, t)
            self.rid_of[(record.name.lower(), t.tuple_id)] = rid
            self.max_tuple_id = max(self.max_tuple_id, t.tuple_id)
        elif record.op == OP_DELETE:
            key = (record.name.lower(), record.tuple_id)
            rid = self.rid_of.pop(key, None)
            if rid is None:
                raise WalError(
                    f"DELETE replay: tuple {record.tuple_id} not found in "
                    f"table {record.name!r}"
                )
            catalog.get_table(record.name).delete(rid)
        elif record.op == OP_ANALYZE:
            from .stats import analyze_table

            names = (
                [record.name]
                if record.name
                else sorted(catalog.tables)
            )
            for name in names:
                analyze_table(catalog.get_table(name))
        else:
            raise WalError(f"cannot replay WAL record op {record.op}")


# -- checkpoints -------------------------------------------------------------


def write_checkpoint(db) -> None:
    """Fold the current state into ``data.ckpt`` and reset the log.

    Crash-safe at every step: the container is written to a temp file and
    fsynced before the atomic rename, and recovery's LSN guard makes the
    window between the rename and the log reset idempotent.
    """
    wal = db._wal
    if wal is None or db.path is None:
        raise WalError("checkpoint requires a durable (path-backed) database")
    faults.reach("checkpoint.begin")
    wal.sync()  # pending group commits become durable before folding
    last_lsn = wal.next_lsn - 1
    buf = io.BytesIO()
    buf.write(CKPT_MAGIC)
    buf.write(struct.pack("<IQ", CKPT_VERSION, last_lsn))
    analyzed = sorted(
        table.name
        for table in db.catalog.tables.values()
        if table.statistics is not None
    )
    buf.write(struct.pack("<I", len(analyzed)))
    for name in analyzed:
        buf.write(_b_str(name))
    write_snapshot(db, buf)
    ckpt_path = os.path.join(db.path, "data.ckpt")
    tmp = ckpt_path + ".tmp"
    with open(tmp, "wb") as f:
        faults.torn_write("checkpoint.write.torn", f, buf.getvalue())
        f.flush()
        os.fsync(f.fileno())
    faults.reach("checkpoint.written")
    os.replace(tmp, ckpt_path)
    faults.reach("checkpoint.rename.after")
    wal.reset(last_lsn)


def _read_checkpoint(path: str, buffer_capacity: int, config):
    """Load ``data.ckpt`` -> (database, last_lsn, analyzed table names)."""
    with open(path, "rb") as f:
        if f.read(4) != CKPT_MAGIC:
            raise WalError(f"{path!r} is not a repro checkpoint")
        version, last_lsn = struct.unpack("<IQ", f.read(12))
        if version != CKPT_VERSION:
            raise WalError(
                f"checkpoint version {version} != supported {CKPT_VERSION}"
            )
        (n_analyzed,) = struct.unpack("<I", f.read(4))
        analyzed = []
        for _ in range(n_analyzed):
            (n,) = struct.unpack("<I", f.read(4))
            analyzed.append(f.read(n).decode("utf-8"))
        db = read_snapshot(f, buffer_capacity=buffer_capacity, config=config)
    return db, last_lsn, analyzed


# -- opening a durable database ----------------------------------------------


def open_durable(
    path: str,
    buffer_capacity: int = 256,
    config=None,
    store_lineage: bool = True,
    group_commit: int = 1,
):
    """Open (or create) a durable database directory; runs recovery.

    Returns ``(database, wal)`` — the database holds the recovered state
    and the log is open for appending, positioned after the last committed
    transaction (any torn or uncommitted suffix has been truncated away).
    """
    from .database import Database
    from .stats import analyze_table
    from .storage.disk import MemoryDisk

    os.makedirs(path, exist_ok=True)
    ckpt_path = os.path.join(path, "data.ckpt")
    wal_path = os.path.join(path, "wal.log")
    # Leftovers of a crashed checkpoint / log reset are garbage by design:
    # both protocols only ever install files via os.replace.
    for stale in (ckpt_path + ".tmp", wal_path + ".new"):
        if os.path.exists(stale):
            os.remove(stale)

    base_lsn = 0
    analyzed: List[str] = []
    if os.path.exists(ckpt_path):
        db, base_lsn, analyzed = _read_checkpoint(
            ckpt_path, buffer_capacity, config
        )
        # The snapshot format does not record the lineage flag; a durable
        # database reapplies the caller's setting uniformly on reopen.
        db.catalog.store_lineage = store_lineage
        for table in db.catalog.tables.values():
            table.store_lineage = store_lineage
    else:
        from ..core.model import DEFAULT_CONFIG

        db = Database(
            disk=MemoryDisk(),
            buffer_capacity=buffer_capacity,
            config=config or DEFAULT_CONFIG,
            store_lineage=store_lineage,
        )
    catalog = db.catalog

    max_lsn = base_lsn
    if os.path.exists(wal_path):
        wal_base, committed, good_end = scan_wal(wal_path)
        if good_end < os.path.getsize(wal_path):
            with open(wal_path, "r+b") as f:
                f.truncate(good_end)
        # Planner statistics from the checkpoint are recomputed over the
        # checkpoint state before replay, so ANALYZE records replayed later
        # observe the same data sequence the live run did.
        for name in analyzed:
            if catalog.has_table(name):
                analyze_table(catalog.get_table(name))
        replayer = _Replayer(catalog)
        catalog.txn.replaying = True
        try:
            for lsn, records in committed:
                max_lsn = max(max_lsn, lsn)
                if lsn <= base_lsn:
                    continue  # already folded into the checkpoint
                for record in records:
                    replayer.apply(record)
        finally:
            catalog.txn.replaying = False
        catalog.store._next_tuple_id = max(
            catalog.store._next_tuple_id, replayer.max_tuple_id
        )
        wal = WriteAheadLog(
            wal_path, base_lsn=wal_base, group_commit=group_commit
        )
    else:
        for name in analyzed:
            if catalog.has_table(name):
                analyze_table(catalog.get_table(name))
        wal = WriteAheadLog.create(
            wal_path, base_lsn=base_lsn, group_commit=group_commit
        )
    wal.next_lsn = max_lsn + 1
    wal.open_append()
    return db, wal
