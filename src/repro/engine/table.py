"""Persistent tables: probabilistic tuples stored in heap files.

A :class:`Table` is the engine's counterpart of a base
:class:`~repro.core.model.ProbabilisticRelation`: the same probabilistic
schema and history registration, but tuples are serialized onto slotted
pages behind a buffer pool, and secondary indexes (B+tree over certain
columns, probability-threshold index over uncertain ones) are maintained on
every insert and delete.

``store_lineage=False`` turns off history persistence — the storage half of
the paper's Figure 6 "without histories" baseline (queries over such a
table silently treat all pdfs as independent).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple, Union

from ..errors import CatalogError, QueryError
from ..core.history import HistoryStore
from ..core.model import (
    CertainValue,
    ProbabilisticSchema,
    ProbabilisticTuple,
    build_base_tuple,
)
from ..pdf.base import Pdf, UnivariatePdf
from .index.btree import BPlusTree
from .index.pti import ProbabilityThresholdIndex
from .index.spatial import SpatialGridIndex
from ..core.columnar import ColumnarSegment
from .storage.buffer import BufferPool
from .storage.heapfile import HeapFile, RID
from .storage.serialize import (
    CertainColumnBuilder,
    decode_prefix,
    decode_tuple,
    dep_summary,
    encode_tuple,
)
from .storage.synopsis import PageSynopsis, ScanPruner

__all__ = ["Table"]


class Table:
    """One on-disk probabilistic table with optional secondary indexes."""

    def __init__(
        self,
        name: str,
        schema: ProbabilisticSchema,
        pool: BufferPool,
        store: HistoryStore,
        store_lineage: bool = True,
        txn=None,
    ):
        self.name = name
        self.schema = schema
        self.pool = pool
        self.store = store
        self.store_lineage = store_lineage
        #: the catalog's TransactionManager (None for standalone tables);
        #: mutation hooks buffer WAL redo records and precise undo entries
        self.txn = txn
        self.heap = HeapFile(pool, name=name)
        self.btrees: Dict[str, BPlusTree] = {}
        self.ptis: Dict[str, ProbabilityThresholdIndex] = {}
        self.spatials: Dict[Tuple[str, ...], SpatialGridIndex] = {}
        #: per-page min/max + mass-bound synopses, maintained on insert/delete
        self.synopses: Dict[int, PageSynopsis] = {}
        #: per-attribute statistics installed by ANALYZE (repro.engine.stats)
        self.statistics = None

    def __len__(self) -> int:
        return len(self.heap)

    # -- data modification ---------------------------------------------------

    def insert(
        self,
        certain: Optional[Mapping[str, CertainValue]] = None,
        uncertain: Optional[Mapping[Union[str, Tuple[str, ...]], Optional[Pdf]]] = None,
    ) -> RID:
        """Insert one base tuple; ancestors are registered in the store."""
        t = build_base_tuple(self.schema, self.store, certain, uncertain)
        rid = self.heap.insert(encode_tuple(t, store_lineage=self.store_lineage))
        self._synopsis_insert(rid, t)
        self._index_insert(rid, t)
        if self.txn is not None:
            self.txn.on_insert(self, rid, t, base=True)
        return rid

    def insert_tuple(self, t: ProbabilisticTuple, acquire: bool = True) -> RID:
        """Insert an already-built tuple (used to materialize query results).

        Acquires references to the tuple's ancestors so that deleting base
        data later keeps them alive as phantom nodes.
        """
        if acquire:
            for lin in t.lineage.values():
                if lin:
                    self.store.acquire(lin)
        rid = self.heap.insert(encode_tuple(t, store_lineage=self.store_lineage))
        self._synopsis_insert(rid, t)
        self._index_insert(rid, t)
        if self.txn is not None:
            self.txn.on_insert(self, rid, t, base=False, acquired=acquire)
        return rid

    def delete(self, rid: RID) -> None:
        """Delete a base tuple; referenced pdfs become phantom nodes."""
        t = self.read(rid)
        if self.txn is not None:
            # Hooked before mutating: captures the record bytes and the
            # history entries this delete will phantomise or remove.
            self.txn.on_delete(self, rid, t)
        self.heap.delete(rid)
        syn = self.synopses.get(rid.page_id)
        if syn is not None:
            syn.remove()
        self._index_delete(rid, t)
        for lin in t.lineage.values():
            if lin:
                self.store.release(lin)
        self.store.delete_base_tuple(t.tuple_id)

    # -- access ------------------------------------------------------------------

    def read(self, rid: RID) -> ProbabilisticTuple:
        """Fetch and decode one tuple."""
        t, _ = decode_tuple(self.heap.read(rid))
        return t

    def read_grouped(self, rids: Iterable[RID]) -> Iterator[ProbabilisticTuple]:
        """Fetch tuples in the given order, pinning each page once per run.

        Consecutive RIDs on the same page are decoded from a single
        buffer-pool fetch instead of one fetch per tuple — the grouping is
        order-preserving, so the output matches ``(self.read(r) for r in
        rids)`` exactly.
        """
        run_page: Optional[int] = None
        run_slots: list = []
        for rid in rids:
            if rid.page_id != run_page and run_slots:
                for record in self.heap.read_run(run_page, run_slots):
                    yield decode_tuple(record)[0]
                run_slots = []
            run_page = rid.page_id
            run_slots.append(rid.slot)
        if run_slots:
            for record in self.heap.read_run(run_page, run_slots):
                yield decode_tuple(record)[0]

    def scan(self) -> Iterator[Tuple[RID, ProbabilisticTuple]]:
        """Sequential scan in page order."""
        for rid, record in self.heap.scan():
            t, _ = decode_tuple(record)
            yield rid, t

    def scan_batches(
        self,
        size: int,
        page_ids: Optional[list] = None,
        pruner: Optional[ScanPruner] = None,
    ) -> Iterator[list]:
        """Sequential scan yielding lists of at most ``size`` decoded tuples.

        A whole pinned page is decoded per buffer-pool fetch; page contents
        are re-chunked to the requested batch size without changing order.
        ``page_ids`` restricts the scan to a page subset (a morsel of the
        parallel executor); concatenating the outputs of a partition of
        ``heap.page_ids`` reproduces the full scan exactly.

        With a lazy ``pruner``, each record's cheap prefix is decoded first
        and the pdf payloads only for tuples the pruner admits — tuples it
        rejects would be dropped by the plan's own filters, so downstream
        results are unchanged.
        """
        lazy = pruner is not None and pruner.lazy
        buf: list = []
        for records in self.heap.scan_pages(page_ids):
            for _rid, record in records:
                if lazy:
                    prefix = decode_prefix(record)
                    if not pruner.admits_prefix(prefix):
                        continue
                    buf.append(prefix.complete())
                else:
                    buf.append(decode_tuple(record)[0])
                if len(buf) >= size:
                    yield buf
                    buf = []
        if buf:
            yield buf

    def scan_segments(
        self,
        size: int,
        page_ids: Optional[list] = None,
        pruner: Optional[ScanPruner] = None,
    ) -> Iterator[Tuple[list, ColumnarSegment]]:
        """Like :meth:`scan_batches`, but decodes pages *directly into
        segment arrays*: each yielded ``(tuples, segment)`` pair carries a
        :class:`~repro.core.columnar.ColumnarSegment` whose tuple-id vector
        and certain-column float64 arrays were accumulated while the v5
        record prefixes decoded, instead of being re-gathered from the
        tuple dicts on first column access.

        The tuple chunks are byte-for-byte the ones :meth:`scan_batches`
        yields (same lazy pruner semantics: with a lazy pruner, pdf
        payloads decode only for tuples the pruner admits), and the seeded
        arrays equal the segment's own lazy gather exactly — this path
        changes where the column build happens, never what it holds.
        """
        certain_attrs = [
            c.name
            for c in self.schema.columns
            if not self.schema.is_uncertain(c.name)
        ]
        lazy = pruner is not None and pruner.lazy
        buf: list = []
        builder = CertainColumnBuilder(certain_attrs)

        def flush():
            segment = ColumnarSegment(buf)
            builder.seed(segment)
            return buf, segment

        for records in self.heap.scan_records(page_ids):
            for record in records:
                if lazy:
                    prefix = decode_prefix(record)
                    if not pruner.admits_prefix(prefix):
                        continue
                    t = prefix.complete()
                else:
                    t, _ = decode_tuple(record)
                buf.append(t)
                builder.add(t.tuple_id, t.certain)
                if len(buf) >= size:
                    yield flush()
                    buf = []
                    builder = CertainColumnBuilder(certain_attrs)
        if buf:
            yield flush()

    # -- page synopses -----------------------------------------------------------

    def _synopsis_insert(self, rid: RID, t: ProbabilisticTuple) -> None:
        syn = self.synopses.get(rid.page_id)
        if syn is None:
            syn = self.synopses[rid.page_id] = PageSynopsis()
        syn.add(t.certain, [dep_summary(dep, pdf) for dep, pdf in t.pdfs.items()])

    def candidate_pages(self, pruner: Optional[ScanPruner]) -> list:
        """The page ids a pruned sequential scan must visit.

        Pages whose synopsis proves zero qualifying mass are skipped; pages
        without a synopsis (none built yet) are always visited — unknown
        means unprunable, never wrong.
        """
        if pruner is None or not pruner.prune_pages:
            return list(self.heap.page_ids)
        out = []
        for page_id in self.heap.page_ids:
            syn = self.synopses.get(page_id)
            if syn is None or pruner.admits_page(syn):
                out.append(page_id)
        return out

    def rebuild_synopses(self) -> None:
        """Rebuild every page synopsis from the stored record prefixes.

        Synopses are derived state (like the secondary indexes): a snapshot
        load restores raw pages and calls this instead of persisting them.
        """
        self.synopses = {}
        for page_id in self.heap.page_ids:
            syn = self.synopses[page_id] = PageSynopsis()
            for records in self.heap.scan_pages([page_id]):
                for _rid, record in records:
                    prefix = decode_prefix(record)
                    syn.add(prefix.certain, prefix.deps)

    # -- indexes --------------------------------------------------------------------

    def create_btree_index(self, attr: str, order: int = 64) -> BPlusTree:
        """Create (and backfill) a B+tree over a certain column."""
        if not self.schema.has_column(attr):
            raise CatalogError(f"table {self.name!r} has no column {attr!r}")
        if self.schema.is_uncertain(attr):
            raise QueryError(
                f"column {attr!r} is uncertain; create a probability-threshold index"
            )
        if attr in self.btrees:
            raise CatalogError(f"index on {self.name}.{attr} already exists")
        tree = BPlusTree(order=order)
        for rid, t in self.scan():
            value = t.certain.get(attr)
            if value is not None:
                tree.insert(value, rid)
        self.btrees[attr] = tree
        if self.txn is not None:
            self.txn.on_create_index(self, "btree", (attr,))
        return tree

    def create_pti_index(self, attr: str) -> ProbabilityThresholdIndex:
        """Create (and backfill) a probability-threshold index on an uncertain column."""
        if not self.schema.has_column(attr):
            raise CatalogError(f"table {self.name!r} has no column {attr!r}")
        if not self.schema.is_uncertain(attr):
            raise QueryError(f"column {attr!r} is certain; create a B+tree index")
        if attr in self.ptis:
            raise CatalogError(f"index on {self.name}.{attr} already exists")
        index = ProbabilityThresholdIndex(attr)
        for rid, t in self.scan():
            marginal = self._index_marginal(t, attr)
            if marginal is not None:
                index.insert(rid, marginal)
        self.ptis[attr] = index
        if self.txn is not None:
            self.txn.on_create_index(self, "pti", (attr,))
        return index

    def create_spatial_index(
        self, attrs: Tuple[str, ...], cell_size: float = 10.0
    ) -> SpatialGridIndex:
        """Create (and backfill) a spatial grid index over a joint dependency set."""
        attrs = tuple(attrs)
        for attr in attrs:
            if not self.schema.has_column(attr):
                raise CatalogError(f"table {self.name!r} has no column {attr!r}")
        dep = self.schema.dependency_set_of(attrs[0])
        if dep is None or not set(attrs) <= dep:
            raise QueryError(
                f"spatial index columns {list(attrs)} must belong to one joint "
                "dependency set"
            )
        if attrs in self.spatials:
            raise CatalogError(f"spatial index on {self.name}{list(attrs)} already exists")
        index = SpatialGridIndex(attrs, cell_size=cell_size)
        for rid, t in self.scan():
            pdf = self._spatial_pdf(t, attrs)
            if pdf is not None:
                index.insert(rid, pdf)
        self.spatials[attrs] = index
        if self.txn is not None:
            self.txn.on_create_index(self, "spatial", attrs, cell_size=cell_size)
        return index

    def _spatial_pdf(self, t: ProbabilisticTuple, attrs: Tuple[str, ...]):
        dep = t.dependency_set_of(attrs[0])
        if dep is None:
            return None
        pdf = t.pdfs.get(dep)
        if pdf is None:
            return None
        if set(pdf.attrs) != set(attrs):
            return pdf.marginalize(list(attrs))
        return pdf

    def _index_marginal(self, t: ProbabilisticTuple, attr: str) -> Optional[UnivariatePdf]:
        dep = t.dependency_set_of(attr)
        if dep is None:
            return None
        pdf = t.pdfs.get(dep)
        if pdf is None:
            return None
        marginal = pdf.marginalize([attr])
        return marginal if isinstance(marginal, UnivariatePdf) else None

    def _index_insert(self, rid: RID, t: ProbabilisticTuple) -> None:
        for attr, tree in self.btrees.items():
            value = t.certain.get(attr)
            if value is not None:
                tree.insert(value, rid)
        for attr, pti in self.ptis.items():
            marginal = self._index_marginal(t, attr)
            if marginal is not None:
                pti.insert(rid, marginal)
        for attrs, spatial in self.spatials.items():
            pdf = self._spatial_pdf(t, attrs)
            if pdf is not None:
                spatial.insert(rid, pdf)

    def _index_delete(self, rid: RID, t: ProbabilisticTuple) -> None:
        for attr, tree in self.btrees.items():
            value = t.certain.get(attr)
            if value is not None:
                tree.delete(value, rid)
        for pti in self.ptis.values():
            pti.delete(rid)
        for spatial in self.spatials.values():
            spatial.delete(rid)

    # -- statistics ------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "rows": len(self.heap),
            "pages": self.heap.num_pages,
            "btree_indexes": len(self.btrees),
            "pti_indexes": len(self.ptis),
        }

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {len(self.heap)} rows, {self.heap.num_pages} pages)"
