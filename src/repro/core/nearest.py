"""Probabilistic nearest-neighbor queries.

The query-processing literature the paper builds on (its references [2],
[4], [6]) revolves around two query classes over pdf attributes: range
queries (covered by selection + thresholds) and **nearest-neighbor
queries** — "which object is closest to q, and with what probability?".
This module adds the latter on top of the model.

For a query point q and tuples with (1-D or jointly 2-D) uncertain
locations, tuple i is the nearest neighbor at distance r when its location
lands at distance r and every other tuple lies farther:

    P(i is NN) = ∫ f_{D_i}(r) · Π_{j≠i} P(D_j > r) dr

where ``D_i = dist(X_i, q)``.  The implementation derives each tuple's
distance distribution exactly (1-D, via the location cdf) or on a grid
(2-D joints), then evaluates the integral on a shared distance lattice.

Partial pdfs compose naturally: an absent tuple never wins, and the
distance distributions are unconditional, so the probabilities sum to
``1 - P(no tuple exists)``.  Tuples must be historically independent
(verified), as with the aggregates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import QueryError, UnsupportedOperationError
from ..pdf.base import Pdf, UnivariatePdf
from ..pdf.histogram import HistogramPdf
from .aggregates import assert_tuples_independent
from .model import DEFAULT_CONFIG, ModelConfig, ProbabilisticRelation

__all__ = ["distance_distribution", "nearest_neighbor_probabilities"]


def distance_distribution(
    pdf: Pdf, point: Sequence[float], bins: int = 256
) -> HistogramPdf:
    """The distribution of ``dist(X, point)`` as a histogram over r >= 0.

    1-D pdfs use their exact cdf (``F_D(r) = F(q+r) - F(q-r)``); joint pdfs
    collapse to a grid and accumulate cell masses by center distance.
    Partial input mass is preserved (the result is partial too).
    """
    point = [float(c) for c in point]
    if isinstance(pdf, UnivariatePdf):
        if len(point) != 1:
            raise QueryError(
                f"1-D attribute vs {len(point)}-D query point"
            )
        (q,) = point
        lo, hi = pdf.support()[pdf.attr]
        r_max = max(abs(lo - q), abs(hi - q))
        if r_max <= 0:
            r_max = 1e-9
        edges = np.linspace(0.0, r_max, bins + 1)
        upper = np.asarray(pdf.cdf(q + edges), dtype=float)
        lower = np.asarray(pdf.cdf(q - edges), dtype=float)
        cdf_d = upper - lower
        masses = np.clip(np.diff(cdf_d), 0.0, None)
        # Fold any clipped support into the last bucket to preserve mass.
        deficit = pdf.mass() - cdf_d[-1]
        if deficit > 0:
            masses[-1] += deficit
        return HistogramPdf(edges, masses, attr="distance")

    grid = pdf.to_grid()
    if len(grid.attrs) != len(point):
        raise QueryError(
            f"{len(grid.attrs)}-D attribute vs {len(point)}-D query point"
        )
    mesh = np.meshgrid(*[axis.representatives() for axis in grid.axes], indexing="ij")
    squared = np.zeros(mesh[0].shape)
    for coords, q in zip(mesh, point):
        squared += (coords - q) ** 2
    distances = np.sqrt(squared).reshape(-1)
    weights = grid.masses.reshape(-1)
    r_max = float(distances.max()) if distances.size else 1.0
    if r_max <= 0:
        r_max = 1e-9
    edges = np.linspace(0.0, r_max * (1 + 1e-9), bins + 1)
    masses, _ = np.histogram(distances, bins=edges, weights=weights)
    return HistogramPdf(edges, np.clip(masses, 0.0, None), attr="distance")


def nearest_neighbor_probabilities(
    rel: ProbabilisticRelation,
    attrs: Sequence[str],
    point: Sequence[float],
    bins: int = 512,
    config: ModelConfig = DEFAULT_CONFIG,
) -> List[Tuple[object, float]]:
    """P(tuple is the nearest neighbor of ``point``), per tuple.

    ``attrs`` names the location attribute(s); for multi-dimensional
    locations they must form one dependency set (a joint pdf).  Returns
    ``(tuple, probability)`` pairs in input order; the probabilities sum to
    ``1 - P(no tuple exists)``.  Ties (exactly equal distances) carry zero
    probability for continuous locations and are resolved in favour of the
    earlier integration cell otherwise.
    """
    if not rel.tuples:
        return []
    assert_tuples_independent(rel)
    attrs = list(attrs)
    for a in attrs:
        if not rel.schema.is_uncertain(a):
            raise QueryError(f"attribute {a!r} is certain; NN needs uncertain locations")

    dists: List[HistogramPdf] = []
    for t in rel.tuples:
        dep = t.dependency_set_of(attrs[0])
        if dep is None or not set(attrs) <= dep:
            raise QueryError(
                f"attributes {attrs} must form one dependency set per tuple"
            )
        pdf = t.pdfs[dep]
        if pdf is None:
            raise QueryError(f"tuple #{t.tuple_id} has a NULL location")
        marginal = pdf.marginalize(attrs) if set(pdf.attrs) != set(attrs) else pdf
        dists.append(distance_distribution(marginal, point, bins=bins))

    r_max = max(d.edges[-1] for d in dists)
    edges = np.linspace(0.0, r_max, bins + 1)
    centers = (edges[:-1] + edges[1:]) / 2.0
    # Per tuple: cell masses and survival P(D_j > r) at cell centers.
    cell_masses = []
    survival = []
    for d in dists:
        cdf_vals = np.asarray(d.cdf(edges), dtype=float)
        cell_masses.append(np.clip(np.diff(cdf_vals), 0.0, None))
        survival.append(1.0 - np.asarray(d.cdf(centers), dtype=float))

    out: List[Tuple[object, float]] = []
    for i, t in enumerate(rel.tuples):
        others = np.ones(len(centers))
        for j, s in enumerate(survival):
            if j != i:
                others = others * np.clip(s, 0.0, 1.0)
        p = float((cell_masses[i] * others).sum())
        out.append((t, min(max(p, 0.0), 1.0)))
    return out
