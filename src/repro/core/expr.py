"""Arithmetic expressions over certain columns.

The engine's ``Compute`` operator evaluates scalar arithmetic —
``a + b * 2`` — over the *certain* part of each tuple, appending the result
as a new certain REAL column.  Uncertain attributes are out of scope here
(arithmetic over pdfs lives in :mod:`repro.pdf.arithmetic`); referencing one
is a schema error caught at plan time.

Two evaluators share one semantics:

* :meth:`Expr.evaluate` — per-tuple, over a certain-value dict,
* :meth:`Expr.evaluate_vector` — whole-column, over ``(values, null_mask)``
  float64 vectors from a :class:`~repro.core.columnar.ColumnarSegment`.

Both compute in IEEE float64 (the scalar path coerces operands with
``float``; ufuncs run the same hardware ops), so their results are bitwise
identical.  NULL semantics follow SQL: any NULL operand yields NULL, and
division by zero yields NULL rather than raising — the mask is the single
source of truth, so the vector path never has to reproduce a raised
``ZeroDivisionError`` cell by cell.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, FrozenSet, Mapping, Optional, Tuple, Union

import numpy as np

from ..errors import QueryError

__all__ = ["Expr", "ColExpr", "ConstExpr", "BinExpr", "as_expr"]

_BIN_OPS: dict = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}


class Expr:
    """Base class: a float64 expression over certain attributes."""

    def attrs(self) -> FrozenSet[str]:
        """Every certain column the expression reads."""
        raise NotImplementedError

    def evaluate(self, certain: Mapping[str, object]) -> Optional[float]:
        """Scalar evaluation against one tuple's certain dict.

        Returns ``None`` for NULL (missing/None operand, division by
        zero).  Raises ``TypeError``/``ValueError`` on non-numeric values —
        the same rows the columnar gather rejects, so both paths agree on
        which inputs are errors.
        """
        raise NotImplementedError

    def evaluate_vector(
        self, getcol: Callable[[str], Optional[Tuple[np.ndarray, np.ndarray]]]
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Vector evaluation: ``(values, null_mask)`` or ``None``.

        ``getcol`` maps an attribute to its ``(values, null_mask)`` column
        or ``None`` when no float64 view exists; any ``None`` column makes
        the whole expression non-vectorizable (the caller falls back to
        :meth:`evaluate` per row).
        """
        raise NotImplementedError

    # sugar so plans/tests can write ``col_expr("a") + 2``
    def __add__(self, other) -> "BinExpr":
        return BinExpr("+", self, as_expr(other))

    def __sub__(self, other) -> "BinExpr":
        return BinExpr("-", self, as_expr(other))

    def __mul__(self, other) -> "BinExpr":
        return BinExpr("*", self, as_expr(other))

    def __truediv__(self, other) -> "BinExpr":
        return BinExpr("/", self, as_expr(other))


def as_expr(value: Union["Expr", int, float]) -> "Expr":
    """Coerce a Python number to a :class:`ConstExpr` (identity on exprs)."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise QueryError(f"cannot use {value!r} in an arithmetic expression")
    return ConstExpr(float(value))


@dataclass(frozen=True)
class ColExpr(Expr):
    """A reference to a certain column."""

    name: str

    def attrs(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def evaluate(self, certain: Mapping[str, object]) -> Optional[float]:
        v = certain.get(self.name)
        return None if v is None else float(v)

    def evaluate_vector(self, getcol):
        col = getcol(self.name)
        if col is None:
            return None
        return col  # already (float64 values, null mask)

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ConstExpr(Expr):
    """A float literal."""

    value: float

    def attrs(self) -> FrozenSet[str]:
        return frozenset()

    def evaluate(self, certain: Mapping[str, object]) -> Optional[float]:
        return self.value

    def evaluate_vector(self, getcol):
        # Scalars broadcast through the ufunc sweep; no per-row array needed.
        return np.float64(self.value), False

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class BinExpr(Expr):
    """``left op right`` for ``op`` in ``+ - * /``."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _BIN_OPS:
            raise QueryError(
                f"unknown arithmetic operator {self.op!r}; use one of "
                f"{sorted(_BIN_OPS)}"
            )

    def attrs(self) -> FrozenSet[str]:
        return self.left.attrs() | self.right.attrs()

    def evaluate(self, certain: Mapping[str, object]) -> Optional[float]:
        a = self.left.evaluate(certain)
        if a is None:
            return None
        b = self.right.evaluate(certain)
        if b is None:
            return None
        if self.op == "/" and b == 0.0:
            return None  # SQL-style NULL, not ZeroDivisionError
        return _BIN_OPS[self.op](a, b)

    def evaluate_vector(self, getcol):
        lhs = self.left.evaluate_vector(getcol)
        if lhs is None:
            return None
        rhs = self.right.evaluate_vector(getcol)
        if rhs is None:
            return None
        lvals, lmask = lhs
        rvals, rmask = rhs
        mask = _mask_or(lmask, rmask)
        if self.op == "/":
            zero = rvals == 0.0
            mask = _mask_or(mask, zero)
            if zero is not False and np.any(zero):
                # Avoid FP exceptions on cells the mask already voids.
                rvals = np.where(zero, 1.0, rvals)
        with np.errstate(over="ignore", invalid="ignore"):
            vals = _BIN_OPS[self.op](lvals, rvals)
        return vals, mask

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


def _mask_or(a, b):
    """Union of null masks where either side may be the scalar ``False``."""
    if a is False:
        return b
    if b is False:
        return a
    return a | b
