"""The selection operator σ (Section III-C).

Three cases, exactly as the paper lays them out:

* **Case 1** — the predicate touches only certain attributes: ordinary
  filtering; pdfs and histories are copied over.
* **Case 2(a)** — dependency sets disjoint from the predicate attributes:
  copied over unchanged.
* **Case 2(b)** — dependency sets intersecting the predicate attributes are
  merged by the closure Ω (Definition 4), their joint pdf is built with the
  history-aware ``product`` primitive (certain attributes enter as identity
  point-mass pdfs), and the joint is floored over the region where the
  predicate is false.  Tuples whose joint mass drops to zero vanish, which
  is what makes the operator consistent with possible worlds semantics
  (Theorem 1).

The per-tuple work lives in :class:`SelectionPlan` so that the streaming
executor in :mod:`repro.engine` can apply selection tuple-at-a-time; the
relation-level :func:`select` is a thin loop over the plan.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import QueryError
from ..pdf.base import Pdf
from ..pdf.discrete import CategoricalPdf, DiscretePdf, label_code
from ..pdf.floors import FlooredPdf
import numpy as np

from ..pdf.kernels import (
    DISCRETE_VECTOR_FAMILIES,
    VECTOR_FAMILIES,
    batch_materialize,
    interval_probs_params,
)
from ..pdf.regions import BoxRegion
from .history import HistoryStore, Lineage
from .model import (
    DEFAULT_CONFIG,
    ModelConfig,
    ProbabilisticRelation,
    ProbabilisticSchema,
    ProbabilisticTuple,
)
from .operations import cached_interval_masses, cached_mass, product
from .predicates import Predicate

__all__ = ["select", "closure", "SelectionPlan"]

#: exact pdf types the batched selection path gathers for the kernel sweep
_FAST_TYPES = frozenset(VECTOR_FAMILIES)

#: symbolic discrete families the batched path materializes in one pmf sweep
_DISCRETE_FAST_TYPES = frozenset(DISCRETE_VECTOR_FAMILIES)


def closure(
    sets: Iterable[FrozenSet[str]], new_set: FrozenSet[str]
) -> Tuple[Tuple[FrozenSet[str], ...], FrozenSet[str]]:
    """Definition 4: merge the connected components of ``sets ∪ {new_set}``.

    Returns ``(untouched_sets, merged_set)`` where ``merged_set`` is the
    union of ``new_set`` with every input set it (transitively) intersects.
    Because the input sets are pairwise disjoint, one merge pass suffices.
    """
    untouched: List[FrozenSet[str]] = []
    merged: Set[str] = set(new_set)
    for s in sets:
        if s & merged:
            merged |= s
        else:
            untouched.append(s)
    return tuple(untouched), frozenset(merged)


def _point_mass(attr: str, value: object) -> Pdf:
    """The identity pdf f0 over a certain attribute (Case 2(b))."""
    if isinstance(value, str):
        return CategoricalPdf({value: 1.0}, attr=attr)
    if isinstance(value, bool):
        return DiscretePdf({1.0 if value else 0.0: 1.0}, attr=attr)
    return DiscretePdf({float(value): 1.0}, attr=attr)  # type: ignore[arg-type]


class SelectionPlan:
    """Precomputed selection over one input schema.

    Splits the schema's dependency sets into touched and untouched parts,
    derives the output schema, and exposes :meth:`apply` which maps one
    input tuple to its selected output tuple (or ``None`` when the tuple is
    filtered out / fully floored).
    """

    def __init__(
        self,
        schema: ProbabilisticSchema,
        predicate: Predicate,
        config: ModelConfig = DEFAULT_CONFIG,
    ):
        for attr in predicate.attrs():
            if not schema.has_column(attr):
                raise QueryError(
                    f"predicate attribute {attr!r} is not a visible column of {schema!r}"
                )
        self.predicate = predicate
        self.config = config
        #: EXPLAIN ANALYZE counters for the columnar path: rows swept by
        #: fused kernels per family vs. rows routed through the tuple path.
        self.columnar_stats = {"kernel_rows": 0, "fallback_rows": 0, "families": {}}
        pred_attrs = frozenset(predicate.attrs())
        self.certain_only = not any(schema.is_uncertain(a) for a in pred_attrs)

        if self.certain_only:
            self.output_schema = schema
            return

        self._untouched, self._merged_set = closure(schema.dependency, pred_attrs)
        self._touched = [s for s in schema.dependency if s & self._merged_set]
        self._merged_certain = [
            a for a in sorted(self._merged_set) if not schema.is_uncertain(a)
        ]
        self.output_schema = ProbabilisticSchema(
            schema.columns, list(self._untouched) + [self._merged_set]
        )
        self._region = predicate.to_region(
            resolver=lambda attr, label: label_code(label)
        )

        # Vectorizable fast path (see apply_batch): the predicate touches
        # exactly one singleton dependency set, merges in no certain
        # attributes, and its region is axis-aligned.  Then ``product`` is
        # the identity and selection reduces to one interval-mass per tuple.
        self._fast_dep = None
        self._fast_allowed = None
        if (
            len(self._touched) == 1
            and self._touched[0] == self._merged_set
            and len(self._merged_set) == 1
            and not self._merged_certain
            and isinstance(self._region, BoxRegion)
        ):
            self._fast_dep = self._touched[0]
            (attr,) = self._merged_set
            self._fast_allowed = self._region.interval_set(attr)

    def apply(
        self, t: ProbabilisticTuple, store: HistoryStore
    ) -> Optional[ProbabilisticTuple]:
        """Select one tuple; ``None`` means it does not survive."""
        if self.certain_only:
            if self.predicate.evaluate(t.certain) is True:
                return ProbabilisticTuple(t.tuple_id, t.certain, t.pdfs, t.lineage)
            return None

        inputs: List[Tuple[Pdf, Lineage]] = []
        for s in self._touched:
            pdf = t.pdfs[s]
            if pdf is None:
                return None  # NULL pdf: predicate unknown, tuple excluded
            inputs.append((pdf, t.lineage[s]))
        for attr in self._merged_certain:
            value = t.certain.get(attr)
            if value is None:
                return None
            inputs.append((_point_mass(attr, value), frozenset()))

        joint, lineage = product(inputs, store, self.config)
        floored = joint.restrict(self._region)
        if cached_mass(floored) <= self.config.mass_epsilon:
            return None

        new_certain = {k: v for k, v in t.certain.items() if k not in self._merged_set}
        new_pdfs = {s: t.pdfs[s] for s in self._untouched}
        new_lineage = {s: t.lineage[s] for s in self._untouched}
        new_pdfs[self._merged_set] = floored
        new_lineage[self._merged_set] = lineage
        return ProbabilisticTuple(t.tuple_id, new_certain, new_pdfs, new_lineage)

    def apply_batch(
        self, tuples: Sequence[ProbabilisticTuple], store: HistoryStore
    ) -> List[Optional[ProbabilisticTuple]]:
        """Select a batch of tuples; element-wise identical to :meth:`apply`.

        When the fast path applies (single singleton dependency set, box
        region — the §IV sensor-workload shape), the per-tuple work reduces
        to ``FlooredPdf(pdf, region).mass()``; those masses are computed in
        one vectorized kernel sweep through the pdf-op cache, and the
        surviving floors are only materialised for tuples that pass the
        mass-epsilon check.  Everything else falls back to :meth:`apply`.
        """
        if self.certain_only or self._fast_dep is None:
            return [self.apply(t, store) for t in tuples]

        dep = self._fast_dep
        region_allowed = self._fast_allowed
        results: List[Optional[ProbabilisticTuple]] = [None] * len(tuples)
        vec_idx: List[int] = []
        vec_bases: List[Pdf] = []
        vec_allowed: List[object] = []
        disc_idx: List[int] = []
        disc_pdfs: List[Pdf] = []
        for i, t in enumerate(tuples):
            pdf = t.pdfs[dep]
            if pdf is None:
                continue  # NULL pdf: predicate unknown, tuple excluded
            tp = type(pdf)
            if tp is FlooredPdf:
                vec_idx.append(i)
                vec_bases.append(pdf.base)
                vec_allowed.append(pdf.allowed.intersect(region_allowed))
            elif tp in _FAST_TYPES:
                vec_idx.append(i)
                vec_bases.append(pdf)
                vec_allowed.append(region_allowed)
            elif tp in _DISCRETE_FAST_TYPES:
                disc_idx.append(i)
                disc_pdfs.append(pdf)
            else:
                results[i] = self.apply(t, store)

        if disc_idx:
            # Symbolic discrete pdfs: share the pmf materialization sweep,
            # then replay the scalar tail of :meth:`apply` verbatim —
            # ``restrict`` keeps the surviving support explicit, and the
            # floored mass goes through the same pdf-op cache keys.
            mats = batch_materialize(disc_pdfs)
            epsilon = self.config.mass_epsilon
            merged_set = self._merged_set
            untouched = self._untouched
            for i, mat in zip(disc_idx, mats):
                t = tuples[i]
                floored = mat.restrict(self._region)
                if cached_mass(floored) <= epsilon:
                    continue
                new_certain = {
                    k: v for k, v in t.certain.items() if k not in merged_set
                }
                new_pdfs = {s: t.pdfs[s] for s in untouched}
                new_lineage = {s: t.lineage[s] for s in untouched}
                new_pdfs[merged_set] = floored
                new_lineage[merged_set] = t.lineage[dep]
                results[i] = ProbabilisticTuple(
                    t.tuple_id, new_certain, new_pdfs, new_lineage
                )

        if not vec_idx:
            return results

        masses = cached_interval_masses(vec_bases, vec_allowed)
        epsilon = self.config.mass_epsilon
        merged_set = self._merged_set
        untouched = self._untouched
        adopt = ProbabilisticTuple._adopt
        for i, base, allowed, m in zip(vec_idx, vec_bases, vec_allowed, masses):
            if m <= epsilon:
                continue
            t = tuples[i]
            # _merged_certain is empty on this path, so the certain values
            # pass through unfiltered; vec_bases are unfloored by
            # construction, so _from_parts is exact.
            if untouched:
                new_pdfs = {s: t.pdfs[s] for s in untouched}
                new_lineage = {s: t.lineage[s] for s in untouched}
            else:
                new_pdfs = {}
                new_lineage = {}
            new_pdfs[merged_set] = FlooredPdf._from_parts(base, allowed)
            new_lineage[merged_set] = t.lineage[dep]
            results[i] = adopt(t.tuple_id, dict(t.certain), new_pdfs, new_lineage)
        return results

    def probabilities_columnar(self, batch) -> Optional[Tuple[List[float], List[int]]]:
        """``P(predicate holds AND the tuple exists)`` per row of ``batch``.

        The probability a PROB() threshold needs is exactly the mass of the
        selected (floored) tuple — so on the kernelizable shape (fast dep is
        the tuple's *only* dependency set) it comes straight off the fused
        ``interval_probs_params`` sweep, without materialising the survivor
        tuples :meth:`apply_columnar` would build only to measure and drop.
        Element-wise identical to ``apply`` + ``probability_of`` composed:
        filtered-out rows (NULL pdfs, mass <= epsilon) read 0.0, and the
        kernel masses are bitwise the values ``cached_mass`` would compute.

        Returns ``(probs, leftover_rows)`` where ``leftover_rows`` are the
        row indices the column view cannot express (their ``probs`` slots
        still hold 0.0 — the caller resolves them via the reference path),
        or ``None`` when the whole batch needs the reference path.
        """
        if self.certain_only or self._fast_dep is None or self._untouched:
            return None
        col = batch.attr_column(self._fast_dep)
        if col is None:
            return None
        out: List[float] = [0.0] * len(batch.tuples)
        epsilon = self.config.mass_epsilon
        stats = self.columnar_stats
        for fam, rows, params, _pdfs, _lins in col.groups:
            masses = interval_probs_params(fam, params, self._fast_allowed)
            fam_name = fam.__name__
            stats["families"][fam_name] = stats["families"].get(fam_name, 0) + len(
                _pdfs
            )
            for i, m in zip(rows.tolist(), masses.tolist()):
                if m > epsilon:
                    out[i] = m if m < 1.0 else 1.0
        stats["kernel_rows"] += col.kernel_rows
        leftover = col.other_rows.tolist() if len(col.other_rows) else []
        stats["fallback_rows"] += len(leftover)
        return out, leftover

    def apply_columnar(self, batch, store: HistoryStore):
        """Select a columnar batch; element-wise identical to :meth:`apply`.

        ``batch`` is a :class:`~repro.engine.executor.columnar.ColumnarBatch`
        (duck-typed: anything with ``tuples`` and ``attr_column``).  Raw
        symbolic-family rows are swept straight off the segment's parameter
        arrays via :func:`interval_probs_params` — one fused ufunc pass per
        family sharing a single :class:`IntervalSet`, no per-tuple type
        dispatch and no pdf-op-cache fingerprinting.  NULL rows are dropped
        in place; everything else (floored pdfs, discrete families, joints)
        rides the reference :meth:`apply_batch` over the fallback rows.
        The kernels are bitwise identical to the frozen scipy objects, so
        survivors and their floored masses match the scalar path exactly.
        """
        tuples = batch.tuples
        if self.certain_only or self._fast_dep is None:
            return self.apply_batch(tuples, store)
        col = batch.attr_column(self._fast_dep)
        if col is None:
            self.columnar_stats["fallback_rows"] += len(tuples)
            return self.apply_batch(tuples, store)

        stats = self.columnar_stats
        allowed = self._fast_allowed
        epsilon = self.config.mass_epsilon
        merged_set = self._merged_set
        untouched = self._untouched
        dep = self._fast_dep
        adopt = ProbabilisticTuple._adopt
        from_parts = FlooredPdf._from_parts
        results: List[Optional[ProbabilisticTuple]] = [None] * len(tuples)

        new = object.__new__
        for fam, rows, params, pdfs, lins in col.groups:
            masses = interval_probs_params(fam, params, allowed)
            fam_name = fam.__name__
            stats["families"][fam_name] = stats["families"].get(fam_name, 0) + len(
                pdfs
            )
            keep = np.flatnonzero(masses > epsilon)
            if untouched:
                for i, j in zip(rows[keep].tolist(), keep.tolist()):
                    t = tuples[i]
                    new_pdfs = {s: t.pdfs[s] for s in untouched}
                    new_lineage = {s: t.lineage[s] for s in untouched}
                    new_pdfs[merged_set] = from_parts(pdfs[j], allowed)
                    new_lineage[merged_set] = lins[j]
                    results[i] = adopt(
                        t.tuple_id, dict(t.certain), new_pdfs, new_lineage
                    )
            else:
                # Hot case: the predicate touches the only dependency set.
                # Inlined ``_from_parts`` + ``_adopt`` — one allocation pair
                # per survivor, no call overhead on the densest loop in the
                # engine.  Field-for-field identical to the branch above.
                # ``attrs`` is shared across the group: every pdf in a family
                # group covers the same single-attribute dependency set.
                gattrs = pdfs[0].attrs
                for i, j in zip(rows[keep].tolist(), keep.tolist()):
                    t = tuples[i]
                    f = new(FlooredPdf)
                    f.attrs = gattrs
                    f._base = pdfs[j]
                    f._allowed = allowed
                    r = new(ProbabilisticTuple)
                    r.tuple_id = t.tuple_id
                    # Alias, don't copy: tuples are immutable by convention
                    # and nothing in the engine writes through ``certain``.
                    r.certain = t.certain
                    r.pdfs = {merged_set: f}
                    r.lineage = {merged_set: lins[j]}
                    results[i] = r
        stats["kernel_rows"] += col.kernel_rows

        # NULL rows stay None (predicate unknown → excluded), matching apply.
        if len(col.other_rows):
            other = col.other_rows.tolist()
            stats["fallback_rows"] += len(other)
            sub = self.apply_batch([tuples[i] for i in other], store)
            for i, r in zip(other, sub):
                results[i] = r
        return results


def select(
    rel: ProbabilisticRelation,
    predicate: Predicate,
    config: ModelConfig = DEFAULT_CONFIG,
) -> ProbabilisticRelation:
    """σ_predicate(rel) under possible worlds semantics."""
    plan = SelectionPlan(rel.schema, predicate, config)
    out = rel.derived(plan.output_schema)
    for t in rel.tuples:
        result = plan.apply(t, rel.store)
        if result is not None:
            out.add_tuple(result)
    return out
