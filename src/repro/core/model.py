"""The probabilistic data model: schemas, tuples, relations (Section II).

A table ``T`` is described by a *probabilistic schema* ``(Σ_T, Δ_T)``:

* ``Σ_T`` — the ordinary relational schema: named, typed columns,
* ``Δ_T`` — the *dependency information*: a partition of the uncertain
  attributes into **dependency sets** that are jointly distributed.
  Attributes not mentioned in any set are certain.  Δ may contain *phantom
  attributes* that are not in Σ — the residue of projections that must keep
  correlation information alive (Section III-B).

A :class:`ProbabilisticTuple` stores values for the certain attributes
(``None`` meaning SQL NULL) and one pdf per dependency set — possibly a
*partial* pdf whose missing mass is the probability the tuple does not
exist, and possibly ``None`` meaning the attribute values are unknown but
the tuple certainly exists (the two distinct readings of Table IV).

Relations carry a shared :class:`~repro.core.history.HistoryStore`; every
inserted dependency set is registered there as a base ancestor so that
later operations can detect and repair historical dependence.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import SchemaError
from ..pdf.base import GridSpec, DEFAULT_GRID, Pdf
from .history import HistoryStore, Lineage, fresh_lineage

__all__ = [
    "DataType",
    "Column",
    "ProbabilisticSchema",
    "ProbabilisticTuple",
    "ProbabilisticRelation",
    "ModelConfig",
    "DEFAULT_CONFIG",
]


class DataType(enum.Enum):
    """Column data types understood by the model and the engine."""

    INT = "int"
    REAL = "real"
    BOOL = "bool"
    TEXT = "text"

    def __repr__(self) -> str:
        return f"DataType.{self.name}"


@dataclass(frozen=True)
class Column:
    """A named, typed column of a probabilistic schema."""

    name: str
    dtype: DataType = DataType.REAL

    def __repr__(self) -> str:
        return f"{self.name}:{self.dtype.value}"


@dataclass(frozen=True)
class ModelConfig:
    """Knobs controlling how the relational operators evaluate pdfs.

    ``use_history``
        When False, the ``product`` primitive multiplies marginals even for
        historically dependent pdfs.  This reproduces the *incorrect*
        baseline of Figure 3 and the "w/o histories" series of Figure 6.
    ``grid``
        Resolution used whenever a symbolic pdf must collapse to grid form.
    ``mass_epsilon``
        Tuples whose joint mass falls below this are dropped from results.
        The default matches the grid ``tail_mass``, so answers agree across
        access paths (sequential scans vs. threshold-index scans) up to the
        probability mass the index's support hull already clips.
    ``eager_merge``
        When True, join results eagerly collapse historically dependent
        dependency sets into explicit joints (the eager strategy discussed
        at the end of Section III-D); the default is lazy.
    ``batch_size``
        Tuples per batch in the vectorized executor pipeline.  ``1``
        disables batching (tuple-at-a-time Volcano iteration); larger sizes
        amortize page pins and let same-family pdfs share one kernel sweep.
    ``workers``
        Worker count for the morsel-driven parallel executor.  ``1`` (the
        default) keeps the serial pipeline — bitwise identical to the
        pre-parallel engine.  Larger values split scans into morsels and
        joins into partitions, run them on a worker pool, and gather the
        streams back in deterministic (serial-equivalent) order.
    ``parallel_backend``
        ``"thread"`` (default) runs morsels on a thread pool — the numpy /
        scipy kernel sweeps release the GIL, so batched symbolic workloads
        overlap.  ``"process"`` forks a process pool per query for
        pure-python pdf paths; it falls back to threads where ``fork`` is
        unavailable.
    ``morsel_size``
        Target number of tuples per morsel.  Scans round this to whole
        pages so each morsel decodes an integral page run.
    ``scan_pruning``
        When True (the default), sequential scans consult per-page
        synopses (min/max of certain values, union of pdf support bounds,
        page-max mass) and skip pages that provably hold zero qualifying
        mass for the query's range and ``PROB`` threshold conjuncts.
        Pruning is sound — pruned tuples would be dropped by the plan's
        own filters — and pruned pages never become parallel morsels.
    ``lazy_decode``
        When True (the default), pruned sequential scans decode each
        record's cheap fixed prefix (certain values + per-dependency-set
        mass/support summary) first and deserialize the pdf payload only
        for tuples that survive the certain-attribute predicate and the
        per-tuple support/mass tests.
    ``columnar``
        When True (the default), scans emit
        :class:`~repro.engine.executor.columnar.ColumnarBatch` es carrying
        struct-of-arrays views (per-family pdf parameter arrays, tuple-id
        and certain-value vectors), and Filter / ProbFilter /
        ThresholdFilter evaluate their fast paths as fused ufunc sweeps
        over those arrays.  ``False`` keeps the list-of-tuples batches.
        Either way the scalar iterator remains the reference semantics;
        the columnar path is asserted bitwise identical to it.
    ``work_mem``
        Per-operator working-memory budget in bytes for the blocking
        operators (hash join build side, ORDER BY, ORDER BY PROB(*),
        DISTINCT).  ``None`` or ``0`` (the default) means unlimited: every
        operator materialises in memory exactly as before.  With a budget
        set, a hash join whose build side exceeds it switches to a
        Grace-style partitioned spill join, and sorts/DISTINCT spill
        sorted runs and merge them back — both asserted bitwise identical
        (tuple ids and row order included) to the in-memory paths.
        Spill activity is reported by ``EXPLAIN ANALYZE`` as
        ``spill_partitions=`` / ``sort_runs=``.
    ``spill_dir``
        Directory for spill run files.  ``None`` (the default) uses a
        fresh temporary directory per spilling operator, removed when the
        operator finishes.  Durable databases point this at
        ``<path>/spill`` so that files orphaned by a crash are removed by
        recovery on the next open.
    """

    use_history: bool = True
    grid: GridSpec = DEFAULT_GRID
    mass_epsilon: float = 1e-6
    eager_merge: bool = False
    batch_size: int = 256
    workers: int = 1
    parallel_backend: str = "thread"
    morsel_size: int = 1024
    scan_pruning: bool = True
    lazy_decode: bool = True
    columnar: bool = True
    work_mem: Optional[int] = None
    spill_dir: Optional[str] = None


def _config_from_env() -> "ModelConfig":
    """The process-default config, honoring REPRO_* environment overrides.

    ``REPRO_WORKERS`` / ``REPRO_PARALLEL_BACKEND`` let CI exercise the
    parallel executor across the whole suite without touching call sites;
    ``REPRO_COLUMNAR=0`` likewise forces the list-of-tuples batch path, and
    ``REPRO_WORK_MEM=<bytes>`` forces the spill-to-disk operator paths.
    """
    import os

    workers = int(os.environ.get("REPRO_WORKERS", "1") or "1")
    backend = os.environ.get("REPRO_PARALLEL_BACKEND", "thread") or "thread"
    columnar = os.environ.get("REPRO_COLUMNAR", "1") not in ("0", "false", "off")
    work_mem = int(os.environ.get("REPRO_WORK_MEM", "0") or "0") or None
    if workers == 1 and backend == "thread" and columnar and work_mem is None:
        return ModelConfig()
    return ModelConfig(
        workers=workers,
        parallel_backend=backend,
        columnar=columnar,
        work_mem=work_mem,
    )


DEFAULT_CONFIG = _config_from_env()


DependencySpec = Iterable[Iterable[str]]


class ProbabilisticSchema:
    """``(Σ, Δ)``: relational schema plus dependency information.

    ``columns`` define the *visible* attributes.  ``dependency`` is the
    partition Δ; its sets may mention phantom attributes that no column
    carries.  Every visible attribute in no dependency set is certain.
    """

    def __init__(self, columns: Sequence[Column], dependency: DependencySpec = ()):
        self.columns: Tuple[Column, ...] = tuple(columns)
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in schema: {names}")
        dep_sets: List[FrozenSet[str]] = []
        seen: set = set()
        for group in dependency:
            s = frozenset(str(a) for a in group)
            if not s:
                raise SchemaError("dependency sets must be non-empty")
            if s & seen:
                raise SchemaError(
                    f"dependency sets must be disjoint; {sorted(s & seen)} repeated"
                )
            seen |= s
            dep_sets.append(s)
        self.dependency: Tuple[FrozenSet[str], ...] = tuple(dep_sets)
        self._by_name: Dict[str, Column] = {c.name: c for c in self.columns}

    # -- attribute classification ------------------------------------------------

    @property
    def visible_attrs(self) -> Tuple[str, ...]:
        """Names of the user-visible columns, in declaration order."""
        return tuple(c.name for c in self.columns)

    @property
    def uncertain_attrs(self) -> FrozenSet[str]:
        """Visible attributes governed by some dependency set."""
        in_deps = frozenset().union(*self.dependency) if self.dependency else frozenset()
        return frozenset(self.visible_attrs) & in_deps

    @property
    def certain_attrs(self) -> Tuple[str, ...]:
        """Visible attributes not governed by any dependency set."""
        uncertain = self.uncertain_attrs
        return tuple(n for n in self.visible_attrs if n not in uncertain)

    @property
    def phantom_attrs(self) -> FrozenSet[str]:
        """Attributes kept only inside Δ (not user-visible)."""
        in_deps = frozenset().union(*self.dependency) if self.dependency else frozenset()
        return in_deps - frozenset(self.visible_attrs)

    def column(self, name: str) -> Column:
        if name not in self._by_name:
            raise SchemaError(f"unknown column {name!r}; schema has {self.visible_attrs}")
        return self._by_name[name]

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    def dependency_set_of(self, attr: str) -> Optional[FrozenSet[str]]:
        """The dependency set governing ``attr``, or None when certain."""
        for s in self.dependency:
            if attr in s:
                return s
        return None

    def is_uncertain(self, attr: str) -> bool:
        return self.dependency_set_of(attr) is not None

    # -- derivation helpers --------------------------------------------------------

    def renamed(self, mapping: Mapping[str, str]) -> "ProbabilisticSchema":
        """A copy with columns and dependency attributes renamed."""
        return ProbabilisticSchema(
            [Column(mapping.get(c.name, c.name), c.dtype) for c in self.columns],
            [{mapping.get(a, a) for a in s} for s in self.dependency],
        )

    def __repr__(self) -> str:
        cols = ", ".join(map(repr, self.columns))
        deps = ", ".join("{" + ",".join(sorted(s)) + "}" for s in self.dependency)
        return f"Schema([{cols}], Δ=[{deps}])"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProbabilisticSchema):
            return NotImplemented
        return self.columns == other.columns and set(self.dependency) == set(other.dependency)


CertainValue = Union[int, float, bool, str, None]


class ProbabilisticTuple:
    """One row: certain values plus one (possibly partial) pdf per dependency set.

    ``pdfs`` maps each dependency set of the schema to a
    :class:`~repro.pdf.base.Pdf` over exactly those attributes, or ``None``
    for NULL (values unknown, tuple exists — Table IV's first reading).
    ``lineage`` maps each set to its history Λ (ancestor links).
    """

    __slots__ = ("tuple_id", "certain", "pdfs", "lineage")

    def __init__(
        self,
        tuple_id: int,
        certain: Mapping[str, CertainValue],
        pdfs: Mapping[FrozenSet[str], Optional[Pdf]],
        lineage: Mapping[FrozenSet[str], Lineage],
    ):
        self.tuple_id = tuple_id
        self.certain: Dict[str, CertainValue] = dict(certain)
        self.pdfs: Dict[FrozenSet[str], Optional[Pdf]] = dict(pdfs)
        self.lineage: Dict[FrozenSet[str], Lineage] = dict(lineage)

    @classmethod
    def _adopt(
        cls,
        tuple_id: int,
        certain: Dict[str, CertainValue],
        pdfs: Dict[FrozenSet[str], Optional[Pdf]],
        lineage: Dict[FrozenSet[str], Lineage],
    ) -> "ProbabilisticTuple":
        """Constructor for hot paths that hand over freshly built dicts.

        Skips the defensive ``dict()`` copies of :meth:`__init__`; callers
        must not alias the arguments afterwards.
        """
        t = cls.__new__(cls)
        t.tuple_id = tuple_id
        t.certain = certain
        t.pdfs = pdfs
        t.lineage = lineage
        return t

    def pdf_of_attr(self, attr: str) -> Optional[Pdf]:
        """The pdf of the dependency set containing ``attr`` (None if NULL)."""
        for s, pdf in self.pdfs.items():
            if attr in s:
                return pdf
        raise SchemaError(f"attribute {attr!r} is not uncertain in this tuple")

    def dependency_set_of(self, attr: str) -> Optional[FrozenSet[str]]:
        for s in self.pdfs:
            if attr in s:
                return s
        return None

    def __repr__(self) -> str:
        parts = [f"{k}={v!r}" for k, v in self.certain.items()]
        for s, pdf in sorted(self.pdfs.items(), key=lambda kv: sorted(kv[0])):
            parts.append("{" + ",".join(sorted(s)) + "}=" + repr(pdf))
        return f"Tuple#{self.tuple_id}(" + ", ".join(parts) + ")"


def build_base_tuple(
    schema: ProbabilisticSchema,
    store: HistoryStore,
    certain: Optional[Mapping[str, CertainValue]] = None,
    uncertain: Optional[Mapping[Union[str, Tuple[str, ...]], Optional[Pdf]]] = None,
) -> ProbabilisticTuple:
    """Build and register a base tuple (shared by the model and the engine).

    Validates the values against the schema, renames pdf attributes onto the
    dependency-set names, registers every pdf as its own top-level ancestor
    in ``store`` (Definition 2), and acquires the references.
    """
    certain = dict(certain or {})
    uncertain = dict(uncertain or {})
    for name in certain:
        if not schema.has_column(name):
            raise SchemaError(f"unknown certain attribute {name!r}")
        if schema.is_uncertain(name):
            raise SchemaError(f"attribute {name!r} is uncertain; pass it via `uncertain`")
    certain_values: Dict[str, CertainValue] = {
        n: certain.get(n) for n in schema.certain_attrs
    }

    pdfs: Dict[FrozenSet[str], Optional[Pdf]] = {}
    for key, pdf in uncertain.items():
        attrs = (key,) if isinstance(key, str) else tuple(key)
        target = frozenset(attrs)
        if target not in schema.dependency:
            raise SchemaError(f"{sorted(target)} is not a dependency set of {schema!r}")
        if pdf is None:
            pdfs[target] = None
            continue
        if pdf.arity != len(attrs):
            raise SchemaError(
                f"pdf over {pdf.attrs} cannot fill dependency set {sorted(target)}"
            )
        pdfs[target] = pdf.with_attrs(attrs)
    for dep in schema.dependency:
        pdfs.setdefault(dep, None)

    tuple_id = store.new_tuple_id()
    lineage: Dict[FrozenSet[str], Lineage] = {}
    for dep, pdf in pdfs.items():
        if pdf is None:
            lineage[dep] = frozenset()
            continue
        ref = store.register_base(tuple_id, pdf)
        lin = fresh_lineage(ref)
        store.acquire(lin)
        lineage[dep] = lin
    return ProbabilisticTuple(tuple_id, certain_values, pdfs, lineage)


class ProbabilisticRelation:
    """A probabilistic table: schema, tuples, and a shared history store."""

    def __init__(
        self,
        schema: ProbabilisticSchema,
        store: Optional[HistoryStore] = None,
        name: str = "",
    ):
        self.schema = schema
        self.store = store if store is not None else HistoryStore()
        self.name = name
        self.tuples: List[ProbabilisticTuple] = []
        self._columnar_cache = None

    # -- insertion ---------------------------------------------------------

    def insert(
        self,
        certain: Optional[Mapping[str, CertainValue]] = None,
        uncertain: Optional[Mapping[Union[str, Tuple[str, ...]], Optional[Pdf]]] = None,
    ) -> ProbabilisticTuple:
        """Insert a base tuple.

        ``certain`` maps certain attribute names to values (missing means
        NULL).  ``uncertain`` maps an attribute name — or an ordered tuple
        of names for a joint dependency set — to a pdf whose attributes are
        renamed positionally to those names; ``None`` stores a NULL pdf.
        Every pdf is registered in the history store as its own top-level
        ancestor (Definition 2).
        """
        t = build_base_tuple(self.schema, self.store, certain, uncertain)
        self.tuples.append(t)
        self._columnar_cache = None
        return t

    def delete(self, t: ProbabilisticTuple) -> None:
        """Delete a base tuple; referenced pdfs survive as phantom nodes."""
        self.tuples.remove(t)
        self._columnar_cache = None
        for lin in t.lineage.values():
            if lin:
                self.store.release(lin)
        self.store.delete_base_tuple(t.tuple_id)

    # -- construction of derived relations ----------------------------------------

    def derived(self, schema: ProbabilisticSchema, name: str = "") -> "ProbabilisticRelation":
        """An empty relation sharing this relation's history store."""
        return ProbabilisticRelation(schema, store=self.store, name=name or self.name)

    def add_tuple(self, t: ProbabilisticTuple, acquire: bool = True) -> None:
        """Append a derived tuple, acquiring references to its ancestors."""
        if acquire:
            for lin in t.lineage.values():
                if lin:
                    self.store.acquire(lin)
        self.tuples.append(t)
        self._columnar_cache = None

    def drop(self) -> None:
        """Release every tuple's ancestor references and clear the relation."""
        for t in self.tuples:
            for lin in t.lineage.values():
                if lin:
                    self.store.release(lin)
        self.tuples.clear()
        self._columnar_cache = None

    def columnar_segment(self):
        """The cached struct-of-arrays view over the current tuple vector.

        Rebuilt (lazily) after any mutation; the returned
        :class:`~repro.core.columnar.ColumnarSegment` snapshots the tuple
        list, so scans that captured it keep a consistent row mapping even
        if the relation mutates mid-scan.  The length check is a belt-and-
        braces guard for mutation paths that bypass the public methods.
        """
        seg = self._columnar_cache
        if seg is None or seg.n != len(self.tuples):
            from .columnar import ColumnarSegment

            seg = self._columnar_cache = ColumnarSegment(self.tuples)
        return seg

    # -- inspection -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self):
        return iter(self.tuples)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"Relation{label}({len(self.tuples)} tuples, {self.schema!r})"

    def pretty(self, limit: int = 20) -> str:
        """A small fixed-width rendering for examples and debugging."""
        header = list(self.schema.visible_attrs)
        lines = [" | ".join(header)]
        lines.append("-+-".join("-" * len(h) for h in header))
        for t in self.tuples[:limit]:
            cells = []
            for attr in header:
                if self.schema.is_uncertain(attr):
                    pdf = t.pdf_of_attr(attr)
                    cells.append("NULL" if pdf is None else repr(pdf))
                else:
                    value = t.certain.get(attr)
                    cells.append("NULL" if value is None else str(value))
            lines.append(" | ".join(cells))
        if len(self.tuples) > limit:
            lines.append(f"... ({len(self.tuples) - limit} more)")
        return "\n".join(lines)
