"""Cross product, join, renaming, and dependency collapsing (Section III-D).

A join is a cross product followed by a selection, and that is literally how
it is implemented: the heavy lifting (history-aware products, floors) all
lives in :mod:`repro.core.select`.

The paper leaves one strategy choice to the implementation: whether the
intra-tuple dependencies implied by histories are merged into Δ *eagerly*
(collapsing joint pdfs at join time) or *lazily* (keeping marginals and
repairing from ancestors when a later operation needs the joint).  Both are
available — lazily by default, eagerly via ``ModelConfig(eager_merge=True)``
or an explicit :func:`collapse_history` call — and the ablation benchmark
compares them.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import SchemaError
from .history import Lineage, historically_dependent, rename_lineage
from .model import (
    DEFAULT_CONFIG,
    ModelConfig,
    ProbabilisticRelation,
    ProbabilisticSchema,
    ProbabilisticTuple,
)
from .operations import product
from .predicates import Predicate
from .select import select

__all__ = [
    "cross_product",
    "join",
    "rename",
    "prefix_attrs",
    "collapse_history",
    "gather_key_vector",
    "keys_kernelizable",
    "build_probe_index",
    "probe_ranges",
]

#: largest magnitude at which int -> float64 conversion stays injective and
#: Python's cross-type numeric equality (1 == 1.0 == True) coincides with
#: float64 equality.  Keys at or beyond this bound take the dict path.
_FLOAT_EXACT_BOUND = float(2**53)


def gather_key_vector(tuples, attr: str) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """``(values, null_mask)`` float64 key vectors for a certain column.

    ``None`` when any value is non-numeric (strings keep Python hashing
    semantics the float vector cannot reproduce).  NULL keys appear as nan
    with the mask set — join consumers skip them, matching the reference
    bucket path which never inserts or probes a ``None`` key.
    """
    n = len(tuples)
    vals = np.empty(n, dtype=float)
    mask = np.zeros(n, dtype=bool)
    try:
        for i, t in enumerate(tuples):
            v = t.certain.get(attr)
            if v is None:
                mask[i] = True
                vals[i] = np.nan
            else:
                vals[i] = v
    except (TypeError, ValueError):
        return None
    return vals, mask


def keys_kernelizable(vals: np.ndarray, mask: np.ndarray) -> bool:
    """Whether float64 equality on these keys matches Python dict semantics.

    False when any non-null key is nan (dict lookup is identity-first, so
    two references to one nan object *do* match while float comparison
    never does) or has magnitude >= 2**53 (int -> float64 stops being
    injective there).
    """
    live = vals[~mask] if mask.any() else vals
    if not len(live):
        return True
    return bool(
        np.isfinite(live).all() and (np.abs(live) < _FLOAT_EXACT_BOUND).all()
    )


def build_probe_index(
    vals: np.ndarray, mask: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """``(order, sorted_keys)`` build-side index over non-null keys.

    ``order`` holds original row positions, stably sorted by key, so equal
    keys keep ascending original order — exactly the insertion order of the
    reference hash-bucket path.  ``sorted_keys[i] == vals[order[i]]``.
    """
    valid = np.flatnonzero(~mask)
    order = valid[np.argsort(vals[valid], kind="stable")]
    return order, vals[order]


def probe_ranges(
    sorted_keys: np.ndarray, probe_vals: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-probe-key ``[lo, hi)`` match windows into the build order.

    One vectorized ``searchsorted`` pair replaces a dict lookup per probe
    row; a nan probe key yields an empty window (sorted_keys holds no nans
    by the :func:`keys_kernelizable` guard).
    """
    lo = np.searchsorted(sorted_keys, probe_vals, side="left")
    hi = np.searchsorted(sorted_keys, probe_vals, side="right")
    return lo, hi


def rename(
    rel: ProbabilisticRelation, mapping: Mapping[str, str]
) -> ProbabilisticRelation:
    """Rename visible and phantom attributes throughout a relation.

    Histories are renamed as well (each ancestor link records the mapping
    from base names to current names), so historical dependence — including
    self-join aliasing — survives the rename.
    """
    all_attrs = set(rel.schema.visible_attrs) | rel.schema.phantom_attrs
    unknown = [a for a in mapping if a not in all_attrs]
    if unknown:
        raise SchemaError(f"cannot rename unknown attributes {unknown}")
    new_schema = rel.schema.renamed(mapping)
    out = rel.derived(new_schema)
    for t in rel.tuples:
        new_certain = {mapping.get(k, k): v for k, v in t.certain.items()}
        new_pdfs = {}
        new_lineage = {}
        for dep, pdf in t.pdfs.items():
            new_dep = frozenset(mapping.get(a, a) for a in dep)
            new_pdfs[new_dep] = None if pdf is None else pdf.rename(mapping)
            new_lineage[new_dep] = rename_lineage(t.lineage.get(dep, frozenset()), mapping)
        out.add_tuple(ProbabilisticTuple(t.tuple_id, new_certain, new_pdfs, new_lineage))
    return out


def prefix_attrs(rel: ProbabilisticRelation, prefix: str) -> ProbabilisticRelation:
    """Rename every attribute ``a`` to ``prefix.a`` (join disambiguation)."""
    all_attrs = set(rel.schema.visible_attrs) | rel.schema.phantom_attrs
    return rename(rel, {a: f"{prefix}.{a}" for a in all_attrs})


def cross_product(
    left: ProbabilisticRelation,
    right: ProbabilisticRelation,
    config: ModelConfig = DEFAULT_CONFIG,
) -> ProbabilisticRelation:
    """R = T1 × T2: concatenated schemas, unioned dependency information.

    Attribute names must be disjoint; use :func:`prefix_attrs` or
    :func:`rename` first when they are not.  Pdfs and histories are copied
    over per the paper's cross-product definition.
    """
    if left.store is not right.store:
        raise SchemaError(
            "cross product requires both relations to share one history store"
        )
    left_attrs = set(left.schema.visible_attrs) | left.schema.phantom_attrs
    right_attrs = set(right.schema.visible_attrs) | right.schema.phantom_attrs
    visible_overlap = set(left.schema.visible_attrs) & set(right.schema.visible_attrs)
    if visible_overlap:
        raise SchemaError(
            f"cross product attribute collision on {sorted(visible_overlap)}; "
            "rename one side first (see prefix_attrs)"
        )
    # Phantom attributes are invisible, so a colliding attribute is renamed
    # on whichever side holds it as a phantom; histories record the mapping,
    # keeping historical dependence detectable after the rename.
    overlap = (left_attrs & right_attrs) - visible_overlap
    if overlap:
        taken = left_attrs | right_attrs
        renames_left: Dict[str, str] = {}
        renames_right: Dict[str, str] = {}
        for attr in sorted(overlap):
            i = 1
            while f"{attr}#{i}" in taken:
                i += 1
            fresh = f"{attr}#{i}"
            taken.add(fresh)
            if attr in right.schema.phantom_attrs:
                renames_right[attr] = fresh
            else:
                renames_left[attr] = fresh
        if renames_left:
            left = rename(left, renames_left)
        if renames_right:
            right = rename(right, renames_right)
    schema = ProbabilisticSchema(
        list(left.schema.columns) + list(right.schema.columns),
        list(left.schema.dependency) + list(right.schema.dependency),
    )
    out = left.derived(schema)
    for tl, tr in itertools.product(left.tuples, right.tuples):
        certain = dict(tl.certain)
        certain.update(tr.certain)
        pdfs = dict(tl.pdfs)
        pdfs.update(tr.pdfs)
        lineage = dict(tl.lineage)
        lineage.update(tr.lineage)
        out.add_tuple(
            ProbabilisticTuple(left.store.new_tuple_id(), certain, pdfs, lineage)
        )
    result = out
    if config.eager_merge:
        result = collapse_history(result, config)
    return result


def join(
    left: ProbabilisticRelation,
    right: ProbabilisticRelation,
    predicate: Predicate,
    config: ModelConfig = DEFAULT_CONFIG,
) -> ProbabilisticRelation:
    """T1 ⋈_θ T2 = σ_θ(T1 × T2)."""
    return select(cross_product(left, right, config), predicate, config)


def collapse_history(
    rel: ProbabilisticRelation, config: ModelConfig = DEFAULT_CONFIG
) -> ProbabilisticRelation:
    """Eagerly merge historically dependent dependency sets into joints.

    Groups the dependency sets whose lineages (in any tuple) share an
    ancestor, replaces each group with its explicit joint pdf built by the
    history-aware ``product``, and returns the collapsed relation.  After
    collapsing, intra-tuple dependence implied by Λ is materialised in Δ.
    """
    deps = list(rel.schema.dependency)
    if len(deps) < 2:
        return rel

    # Union-find over dependency sets, linked when any tuple shows history overlap.
    parent = list(range(len(deps)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[rj] = ri

    for t in rel.tuples:
        lineages = [t.lineage.get(dep, frozenset()) for dep in deps]
        for i in range(len(deps)):
            for j in range(i + 1, len(deps)):
                if historically_dependent(lineages[i], lineages[j]):
                    union(i, j)

    groups: Dict[int, List[int]] = {}
    for i in range(len(deps)):
        groups.setdefault(find(i), []).append(i)
    if all(len(g) == 1 for g in groups.values()):
        return rel

    new_dependency = [
        frozenset().union(*(deps[i] for i in members)) for members in groups.values()
    ]
    new_schema = ProbabilisticSchema(rel.schema.columns, new_dependency)
    out = rel.derived(new_schema)
    for t in rel.tuples:
        new_pdfs = {}
        new_lineage = {}
        for members, merged in zip(groups.values(), new_dependency):
            if len(members) == 1:
                dep = deps[members[0]]
                new_pdfs[merged] = t.pdfs.get(dep)
                new_lineage[merged] = t.lineage.get(dep, frozenset())
                continue
            inputs = []
            has_null = False
            for i in members:
                pdf = t.pdfs.get(deps[i])
                if pdf is None:
                    has_null = True
                    break
                inputs.append((pdf, t.lineage.get(deps[i], frozenset())))
            if has_null:
                new_pdfs[merged] = None
                new_lineage[merged] = frozenset()
                continue
            joint, lineage = product(inputs, rel.store, config)
            new_pdfs[merged] = joint
            new_lineage[merged] = lineage
        out.add_tuple(
            ProbabilisticTuple(t.tuple_id, dict(t.certain), new_pdfs, new_lineage)
        )
    return out
