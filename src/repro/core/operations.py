"""The pdf primitives beneath the relational operators (Section III-A).

Three internal operations — ``marginalize``, ``floor`` and ``product`` —
are all the machinery the relational operators need.  The subtle one is
``product`` over *historically dependent* inputs: when two pdfs share a
common ancestor, multiplying their marginals double-counts and mis-weights
outcomes (the "Incorrect!" table of Figure 3).  The paper's fix, implemented
verbatim here, reconstructs the joint from

* the **base ancestor pdfs** for the shared attributes (``C_j`` components),
* the input **marginals** for the private attributes (``D_i`` components),

and then *propagates the floors* of each input by zeroing the joint wherever
any input pdf is zero — the surviving-possible-worlds indicator of the
paper's product formula.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import HistoryError, UnsupportedOperationError
from ..pdf import kernels
from ..pdf.base import Pdf
from ..pdf.discrete import DiscretePdf
from ..pdf.floors import FlooredPdf
from ..pdf.histogram import HistogramPdf
from ..pdf.joint import (
    JointDiscretePdf,
    JointGridPdf,
    ProductPdf,
    as_joint_discrete,
    independent_product,
)
from ..pdf.regions import BoxRegion, Interval, IntervalSet, PredicateRegion, Region
from .history import AncestorRef, HistoryStore, Lineage
from .model import DEFAULT_CONFIG, ModelConfig

__all__ = [
    "support_region",
    "product",
    "marginalize",
    "floor",
    "PdfOpCache",
    "PDF_OP_CACHE",
    "cached_mass",
    "cached_masses",
    "cached_interval_masses",
    "cached_marginalize",
    "cached_restrict",
]


# ---------------------------------------------------------------------------
# The pdf-operation cache
# ---------------------------------------------------------------------------

_MISS = object()


class PdfOpCache:
    """An LRU memo for ``mass`` / ``marginalize`` / ``restrict`` results.

    Keys combine a :meth:`~repro.pdf.base.Pdf.fingerprint` with the
    operation name and arguments, so structurally identical pdfs share
    entries across tuples, operators and queries.  Hit/miss counters are
    surfaced through the bench reporting layer.

    Thread-safe: the parallel executor's workers share this cache, so every
    mutation (LRU reordering included — ``move_to_end`` on a dict being
    resized by another thread corrupts it) happens under one lock.  The
    lock is excluded from pickling so cached state can cross a ``fork``
    boundary cleanly.
    """

    def __init__(self, maxsize: int = 8192):
        self.maxsize = int(maxsize)
        self.hits = 0
        self.misses = 0
        self._data: "OrderedDict" = OrderedDict()
        self._lock = threading.Lock()

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key):
        """The cached value, or the internal miss sentinel."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                return _MISS
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key, value) -> None:
        # New keys land at the MRU end by insertion order; puts always follow
        # a miss, so no move_to_end (and its second key hash) is needed.
        with self._lock:
            data = self._data
            data[key] = value
            while len(data) > self.maxsize:
                data.popitem(last=False)

    def reset(self) -> None:
        """Drop all entries and zero the counters."""
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0

    def configure(self, maxsize: int) -> None:
        """Resize the cache (evicting LRU entries if shrinking)."""
        with self._lock:
            self.maxsize = int(maxsize)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def stats(self) -> Dict[str, float]:
        with self._lock:
            total = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._data),
                "hit_rate": (self.hits / total) if total else 0.0,
            }


#: Process-wide cache shared by every relation, table, and executor plan.
PDF_OP_CACHE = PdfOpCache()


def _region_key(region: Region):
    """A hashable key for cacheable (axis-aligned) regions; ``None`` otherwise."""
    if isinstance(region, BoxRegion):
        return ("box",) + tuple((a, region.interval_set(a)) for a in region.attrs)
    return None


def cached_mass(pdf: Pdf) -> float:
    """``pdf.mass()`` through the pdf-op cache."""
    fp = pdf.fingerprint()
    if fp is None:
        return pdf.mass()
    key = ("mass", fp)
    value = PDF_OP_CACHE.get(key)
    if value is _MISS:
        value = float(pdf.mass())
        PDF_OP_CACHE.put(key, value)
    return value


def cached_masses(pdfs: Sequence[Pdf]) -> List[float]:
    """``mass()`` for a batch of pdfs: cache hits first, one kernel sweep for the misses."""
    n = len(pdfs)
    out: List[float] = [0.0] * n
    keys: List[object] = [None] * n
    missing: List[int] = []
    cache = PDF_OP_CACHE
    for i, pdf in enumerate(pdfs):
        fp = pdf.fingerprint()
        if fp is None:
            missing.append(i)
            continue
        key = ("mass", fp)
        keys[i] = key
        value = cache.get(key)
        if value is _MISS:
            missing.append(i)
        else:
            out[i] = value
    if missing:
        values = kernels.batch_mass([pdfs[i] for i in missing])
        for j, i in enumerate(missing):
            value = float(values[j])
            out[i] = value
            if keys[i] is not None:
                cache.put(keys[i], value)
    return out


def cached_interval_masses(
    bases: Sequence[Pdf], alloweds: Sequence[IntervalSet]
) -> List[float]:
    """Mass of ``FlooredPdf(base_i, allowed_i)`` without building the floors.

    Shares cache keys with :func:`cached_mass` over the equivalent
    :class:`~repro.pdf.floors.FlooredPdf` (its fingerprint is
    ``("floor", base_fp, allowed)``), and computes the misses with one
    vectorized kernel sweep.
    """
    n = len(bases)
    out: List[float] = [0.0] * n
    keys: List[object] = [None] * n
    missing: List[int] = []
    cache = PDF_OP_CACHE
    for i in range(n):
        base_fp = bases[i].fingerprint()
        if base_fp is None:
            missing.append(i)
            continue
        key = ("mass", ("floor", base_fp, alloweds[i]))
        keys[i] = key
        value = cache.get(key)
        if value is _MISS:
            missing.append(i)
        else:
            out[i] = value
    if missing:
        values = kernels.batch_interval_probs(
            [bases[i] for i in missing], [alloweds[i] for i in missing]
        )
        for j, i in enumerate(missing):
            value = float(values[j])
            out[i] = value
            if keys[i] is not None:
                cache.put(keys[i], value)
    return out


def cached_marginalize(pdf: Pdf, attrs: Sequence[str]) -> Pdf:
    """``pdf.marginalize(attrs)`` through the pdf-op cache."""
    fp = pdf.fingerprint()
    if fp is None:
        return pdf.marginalize(attrs)
    key = ("marginalize", fp, tuple(attrs))
    value = PDF_OP_CACHE.get(key)
    if value is _MISS:
        value = pdf.marginalize(attrs)
        PDF_OP_CACHE.put(key, value)
    return value


def cached_restrict(pdf: Pdf, region: Region) -> Pdf:
    """``pdf.restrict(region)`` through the pdf-op cache (box regions only)."""
    fp = pdf.fingerprint()
    rk = _region_key(region) if fp is not None else None
    if rk is None:
        return pdf.restrict(region)
    key = ("restrict", fp, rk)
    value = PDF_OP_CACHE.get(key)
    if value is _MISS:
        value = pdf.restrict(region)
        PDF_OP_CACHE.put(key, value)
    return value


def marginalize(pdf: Pdf, attrs: Sequence[str]) -> Pdf:
    """The paper's ``marginalize(f, A)`` primitive (memoised)."""
    return cached_marginalize(pdf, attrs)


def floor(pdf: Pdf, region: Region) -> Pdf:
    """The paper's ``floor(f, F)``: zero the pdf over the failing region."""
    return pdf.floor_out(region)


def support_region(pdf: Pdf) -> Optional[Region]:
    """A region containing exactly the non-zero part of ``pdf``.

    Returns ``None`` when the pdf is nowhere zero (nothing to propagate).
    Box regions are returned whenever the zero set is axis-aligned, keeping
    the floor propagation symbolic.
    """
    if isinstance(pdf, FlooredPdf):
        if pdf.allowed.is_full():
            return None
        return BoxRegion({pdf.attr: pdf.allowed})
    if isinstance(pdf, DiscretePdf):
        points = [Interval(v, v) for v, p in pdf.items() if p > 0.0]
        return BoxRegion({pdf.attr: IntervalSet(points)})
    if isinstance(pdf, HistogramPdf):
        masses = pdf.masses
        if np.all(masses > 0):
            return None
        edges = pdf.edges
        pieces = [
            Interval(float(edges[i]), float(edges[i + 1]))
            for i in range(len(masses))
            if masses[i] > 0
        ]
        return BoxRegion({pdf.attr: IntervalSet(pieces)})
    if isinstance(pdf, JointDiscretePdf):
        table = pdf.table

        def member(*cols: np.ndarray) -> np.ndarray:
            cols = np.broadcast_arrays(*cols)
            flat = [np.atleast_1d(c).reshape(-1) for c in cols]
            out = np.array(
                [
                    tuple(float(col[i]) for col in flat) in table
                    and table[tuple(float(col[i]) for col in flat)] > 0.0
                    for i in range(len(flat[0]))
                ]
            )
            return out.reshape(np.atleast_1d(cols[0]).shape)

        return PredicateRegion(pdf.attrs, member, "support")
    if isinstance(pdf, JointGridPdf):
        if np.all(pdf.masses > 0):
            return None
        target = pdf

        def positive(*cols: np.ndarray) -> np.ndarray:
            assignment = dict(zip(target.attrs, cols))
            return np.asarray(target.density(assignment)) > 0.0

        return PredicateRegion(pdf.attrs, positive, "support")
    if isinstance(pdf, ProductPdf):
        parts = [support_region(f) for f in pdf.factors]
        parts = [p for p in parts if p is not None]
        if not parts:
            return None
        if all(isinstance(p, BoxRegion) for p in parts):
            merged = parts[0]
            for p in parts[1:]:
                merged = merged.intersect_box(p)  # type: ignore[union-attr]
            return merged
        out = parts[0]
        for p in parts[1:]:
            out = out.intersect(p)
        return out
    # Symbolic continuous families (Gaussian, Uniform, ...) are positive on
    # their full support; nothing to propagate.
    return None


def _group_shared_ancestors(
    lineages: Sequence[Lineage],
) -> Dict[AncestorRef, Dict[str, List[str]]]:
    """Ancestor refs appearing in two or more inputs, with their base->current maps.

    The value maps each base attribute of the ancestor to the list of
    *current* attribute names it appears under (more than one for
    self-joins, where both sides alias the same base variable).
    """
    owners: Dict[AncestorRef, set] = {}
    for idx, lineage in enumerate(lineages):
        for link in lineage:
            owners.setdefault(link.ref, set()).add(idx)
    shared = {ref for ref, idxs in owners.items() if len(idxs) >= 2}
    result: Dict[AncestorRef, Dict[str, List[str]]] = {}
    for lineage in lineages:
        for link in lineage:
            if link.ref not in shared:
                continue
            per_base = result.setdefault(link.ref, {})
            for base, current in link.mapping:
                targets = per_base.setdefault(base, [])
                if current not in targets:
                    targets.append(current)
    return result


def _expand_ancestor(
    ancestor: Pdf, base_to_currents: Dict[str, List[str]]
) -> Pdf:
    """Instantiate an ancestor pdf under the current attribute names.

    When every base attribute maps to a single current name this is a
    marginalisation plus rename.  When a base attribute is aliased to
    several current names (self-join), the same random variable appears
    multiple times; for discrete ancestors we realise the exact diagonal
    joint, for continuous ones there is no finite-density representation.
    """
    used = {b: cs for b, cs in base_to_currents.items() if cs}
    base_attrs = [a for a in ancestor.attrs if a in used]
    marginal = cached_marginalize(ancestor, base_attrs)
    if all(len(cs) == 1 for cs in used.values()):
        return marginal.rename({b: cs[0] for b, cs in used.items()})
    discrete = as_joint_discrete(marginal)
    if discrete is None:
        raise UnsupportedOperationError(
            "self-join aliases a continuous base pdf under two names; the "
            "diagonal joint has no density — discretize the input first"
        )
    order = [a for a in marginal.attrs if a in used]
    new_attrs = [c for b in order for c in used[b]]
    table = {}
    for key, p in discrete.items():
        by_base = dict(zip(discrete.attrs, key))
        new_key = tuple(by_base[b] for b in order for _ in used[b])
        table[new_key] = table.get(new_key, 0.0) + p
    return JointDiscretePdf(new_attrs, table)


def product(
    inputs: Sequence[Tuple[Pdf, Lineage]],
    store: HistoryStore,
    config: ModelConfig = DEFAULT_CONFIG,
) -> Tuple[Pdf, Lineage]:
    """The paper's ``product`` primitive over possibly-dependent pdfs.

    ``inputs`` pairs each pdf with its history Λ.  The inputs must cover
    pairwise-disjoint current attribute names.  Returns the joint pdf over
    the union of the attributes plus the combined lineage
    (Definition 2: Λ(t'.S') = ∪ Λ(t.S_i)).
    """
    if not inputs:
        raise HistoryError("product of zero pdfs is undefined")
    pdfs = [p for p, _ in inputs]
    lineages = [lin for _, lin in inputs]
    combined: Lineage = frozenset().union(*lineages)

    names = [a for p in pdfs for a in p.attrs]
    if len(set(names)) != len(names):
        raise HistoryError(f"product inputs must have disjoint attributes, got {names}")

    if len(inputs) == 1:
        return pdfs[0], combined

    shared = _group_shared_ancestors(lineages) if config.use_history else {}
    if not shared:
        return independent_product(*pdfs), combined

    current_attrs = set(names)
    components: List[Pdf] = []
    covered: set = set()
    for ref in sorted(shared, key=lambda r: (r.tuple_id, tuple(sorted(r.attrs)))):
        base_to_currents = {
            base: [c for c in currents if c in current_attrs and c not in covered]
            for base, currents in shared[ref].items()
        }
        base_to_currents = {b: cs for b, cs in base_to_currents.items() if cs}
        if not base_to_currents:
            continue
        ancestor = store.pdf(ref)
        component = _expand_ancestor(ancestor, base_to_currents)
        components.append(component)
        covered.update(a for cs in base_to_currents.values() for a in cs)

    for pdf in pdfs:
        private = [a for a in pdf.attrs if a not in covered]
        if private:
            components.append(cached_marginalize(pdf, private))
            covered.update(private)

    joint = independent_product(*components)

    # Propagate the floors of every input: possible worlds in which an input
    # pdf is zero did not survive earlier selections (paper Section III-A).
    for pdf in pdfs:
        region = support_region(pdf)
        if region is not None:
            joint = joint.restrict(region)
    return joint, combined
