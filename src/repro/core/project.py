"""The projection operator Π (Section III-B).

Projection must not lose correlation information: a dependency set whose
pdf is *partial* (mass < 1) still constrains which possible worlds survived
earlier selections, even if none of its attributes remain visible.  The
paper therefore keeps such sets in Δ as **phantom attributes**.

Per dependency set ``S`` with kept attributes ``A`` the plan chooses:

* ``keep`` — ``S ⊆ A``, or the set may carry partial mass: kept whole (the
  invisible attributes become phantoms),
* ``marginal`` — every pdf in the relation has full mass: safe to
  marginalise down to ``S ∩ A`` (the optimisation the paper applies in
  Figure 3, where only the marginal of ``a`` is kept; historical dependence
  is repaired later from the ancestors),
* ``drop`` — disjoint from ``A`` with full mass everywhere.

The streaming executor cannot see all tuples up front, so it builds the
plan in *conservative* mode, which never marginalises partial information
away (always correct, occasionally keeps more phantoms than needed).

Duplicate elimination is intentionally not performed, as in the paper.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence

from ..errors import QueryError
from .model import (
    DEFAULT_CONFIG,
    ModelConfig,
    ProbabilisticRelation,
    ProbabilisticSchema,
    ProbabilisticTuple,
)

__all__ = ["project", "ProjectionPlan"]


class ProjectionPlan:
    """Precomputed projection over one input schema.

    ``partial_sets`` names the dependency sets that may hold partial pdfs —
    pass ``None`` (conservative) when that cannot be determined up front.
    """

    def __init__(
        self,
        schema: ProbabilisticSchema,
        attrs: Sequence[str],
        partial_sets: "FrozenSet[FrozenSet[str]] | None" = None,
        config: ModelConfig = DEFAULT_CONFIG,
        aggressive: bool = False,
    ):
        """``aggressive=True`` always marginalises down to the visible
        attributes, discarding phantom information.  Existence probabilities
        are preserved (marginalisation keeps total mass), but joint floor
        structure is lost, so *later* history-dependent operations may
        over-count — this is the cheap-but-unsafe strategy the paper's
        "without histories" baseline pairs with.
        """
        attrs = list(attrs)
        if len(set(attrs)) != len(attrs):
            raise QueryError(f"duplicate attributes in projection list: {attrs}")
        for a in attrs:
            if not schema.has_column(a):
                raise QueryError(f"cannot project unknown attribute {a!r}")
        self.attrs = attrs
        self.config = config
        kept = frozenset(attrs)

        self._actions: List = []  # (dep_set, action)
        new_dependency: List[FrozenSet[str]] = []
        for dep in schema.dependency:
            inter = dep & kept
            may_be_partial = partial_sets is None or dep in partial_sets
            if inter == dep:
                action = "keep"
            elif aggressive:
                action = "marginal" if inter else "drop"
            elif may_be_partial:
                action = "keep"
            elif inter:
                action = "marginal"
            else:
                action = "drop"
            self._actions.append((dep, action))
            if action == "keep":
                new_dependency.append(dep)
            elif action == "marginal":
                new_dependency.append(inter)
        self.output_schema = ProbabilisticSchema(
            [schema.column(a) for a in attrs], new_dependency
        )

    def apply(self, t: ProbabilisticTuple) -> ProbabilisticTuple:
        """Project a single tuple (projection never drops tuples)."""
        new_certain = {a: t.certain[a] for a in self.attrs if a in t.certain}
        new_pdfs = {}
        new_lineage = {}
        for dep, action in self._actions:
            if action == "drop":
                continue
            pdf = t.pdfs.get(dep)
            if action == "keep":
                new_pdfs[dep] = pdf
                new_lineage[dep] = t.lineage.get(dep, frozenset())
            else:  # marginal
                inter = frozenset(dep) & frozenset(self.attrs)
                ordered = sorted(inter)
                new_pdfs[frozenset(inter)] = (
                    None if pdf is None else pdf.marginalize(ordered)
                )
                new_lineage[frozenset(inter)] = t.lineage.get(dep, frozenset())
        return ProbabilisticTuple(t.tuple_id, new_certain, new_pdfs, new_lineage)


def _partial_sets(rel: ProbabilisticRelation) -> FrozenSet[FrozenSet[str]]:
    """The dependency sets holding a partial pdf in at least one tuple."""
    partial = set()
    for dep in rel.schema.dependency:
        for t in rel.tuples:
            pdf = t.pdfs.get(dep)
            if pdf is not None and pdf.mass() < 1.0 - 1e-9:
                partial.add(dep)
                break
    return frozenset(partial)


def project(
    rel: ProbabilisticRelation,
    attrs: Sequence[str],
    config: ModelConfig = DEFAULT_CONFIG,
    aggressive: bool = False,
) -> ProbabilisticRelation:
    """Π_attrs(rel): keep the named visible columns."""
    plan = ProjectionPlan(
        rel.schema,
        attrs,
        partial_sets=_partial_sets(rel),
        config=config,
        aggressive=aggressive,
    )
    out = rel.derived(plan.output_schema)
    for t in rel.tuples:
        out.add_tuple(plan.apply(t))
    return out
