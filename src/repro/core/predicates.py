"""Boolean selection predicates over relation attributes.

A predicate is a small AST (comparisons combined with AND / OR / NOT) that
can be evaluated two ways:

* over **certain** values (:meth:`Predicate.evaluate`) — SQL-style
  three-valued logic where any comparison against NULL yields *unknown*,
* over **uncertain** values, by denotation as a
  :class:`~repro.pdf.regions.Region` (:meth:`Predicate.to_region`) which the
  selection operator uses to floor pdfs (Section III-C).

Attribute-vs-constant comparisons denote axis-aligned :class:`BoxRegion`
constraints — the case where symbolic floors stay symbolic.  The region
builder keeps conjunctions of boxes as a single box, so ``18 < x AND x < 22``
floors a Gaussian without leaving closed form.
"""

from __future__ import annotations

import operator
from typing import Callable, FrozenSet, Mapping, Optional, Sequence, Union

import numpy as np

from ..errors import QueryError
from ..pdf.regions import (
    BoxRegion,
    IntersectionRegion,
    IntervalSet,
    PredicateRegion,
    Region,
    UnionRegion,
)

__all__ = [
    "Predicate",
    "Comparison",
    "IsNull",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "col",
    "LabelResolver",
]

#: Maps a (attr, label) pair to its numeric code for categorical columns.
LabelResolver = Callable[[str, str], float]

_OPS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_FLIP = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _interval_for(op: str, value: float) -> IntervalSet:
    """The set of x with ``x op value``."""
    if op == "=":
        return IntervalSet.point(value)
    if op == "!=":
        return IntervalSet.point(value).complement()
    if op == "<":
        return IntervalSet.less_than(value)
    if op == "<=":
        return IntervalSet.less_than(value, inclusive=True)
    if op == ">":
        return IntervalSet.greater_than(value)
    if op == ">=":
        return IntervalSet.greater_than(value, inclusive=True)
    raise QueryError(f"unknown comparison operator {op!r}")


class Predicate:
    """Base class for boolean predicates."""

    def attrs(self) -> FrozenSet[str]:
        """All attribute names the predicate mentions."""
        raise NotImplementedError

    def evaluate(self, row: Mapping[str, object]) -> Optional[bool]:
        """Three-valued evaluation over certain values (None = unknown)."""
        raise NotImplementedError

    def to_region(self, resolver: Optional[LabelResolver] = None) -> Region:
        """Denote the predicate as a region over its attributes."""
        raise NotImplementedError

    # -- combinators -----------------------------------------------------------

    def __and__(self, other: "Predicate") -> "Predicate":
        return And((self, other))

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or((self, other))

    def __invert__(self) -> "Predicate":
        return Not(self)


class TruePredicate(Predicate):
    """The always-true predicate (selects everything)."""

    def attrs(self) -> FrozenSet[str]:
        return frozenset()

    def evaluate(self, row: Mapping[str, object]) -> Optional[bool]:
        return True

    def to_region(self, resolver: Optional[LabelResolver] = None) -> Region:
        return BoxRegion({})

    def __repr__(self) -> str:
        return "TRUE"


class Comparison(Predicate):
    """``left op right`` where operands are column references or constants.

    ``left`` must be a column name; ``right`` is either a constant (number or
    categorical label string) or another column name wrapped via
    :func:`col`.
    """

    def __init__(self, left: str, op: str, right: Union[float, str, "ColumnRef"]):
        if op not in _OPS:
            raise QueryError(f"unknown comparison operator {op!r}")
        self.left = str(left)
        self.op = op
        self.right = right

    @property
    def is_column_comparison(self) -> bool:
        return isinstance(self.right, ColumnRef)

    def attrs(self) -> FrozenSet[str]:
        names = {self.left}
        if isinstance(self.right, ColumnRef):
            names.add(self.right.name)
        return frozenset(names)

    def evaluate(self, row: Mapping[str, object]) -> Optional[bool]:
        lhs = row.get(self.left)
        rhs = row.get(self.right.name) if isinstance(self.right, ColumnRef) else self.right
        if lhs is None or rhs is None:
            return None
        return bool(_OPS[self.op](lhs, rhs))

    def _resolve_value(self, resolver: Optional[LabelResolver]) -> float:
        value = self.right
        if isinstance(value, str):
            if resolver is None:
                raise QueryError(
                    f"comparison against label {value!r} needs a categorical column"
                )
            if self.op not in ("=", "!="):
                raise QueryError(
                    f"categorical labels only support = and !=, not {self.op!r}"
                )
            return resolver(self.left, value)
        return float(value)  # type: ignore[arg-type]

    def to_region(self, resolver: Optional[LabelResolver] = None) -> Region:
        if isinstance(self.right, ColumnRef):
            op_fn = _OPS[self.op]
            left, right = self.left, self.right.name

            def pred(a: np.ndarray, b: np.ndarray) -> np.ndarray:
                return op_fn(a, b)

            return PredicateRegion((left, right), pred, f"{left} {self.op} {right}")
        value = self._resolve_value(resolver)
        return BoxRegion({self.left: _interval_for(self.op, value)})

    def __repr__(self) -> str:
        rhs = self.right.name if isinstance(self.right, ColumnRef) else repr(self.right)
        return f"({self.left} {self.op} {rhs})"


class IsNull(Predicate):
    """``attr IS [NOT] NULL`` — a two-valued test over certain values.

    Unlike comparisons, NULL-ness of a value is always known, so evaluation
    never returns *unknown*.  The predicate has no region denotation: it
    may only be used over certain attributes (an uncertain attribute is
    NULL when its whole pdf is NULL, which selection handles by dropping —
    query for it with ``IS NULL`` only on certain columns).
    """

    def __init__(self, attr: str, negated: bool = False):
        self.attr = str(attr)
        self.negated = negated

    def attrs(self) -> FrozenSet[str]:
        return frozenset({self.attr})

    def evaluate(self, row: Mapping[str, object]) -> Optional[bool]:
        is_null = row.get(self.attr) is None
        return (not is_null) if self.negated else is_null

    def to_region(self, resolver: Optional[LabelResolver] = None) -> Region:
        raise QueryError(
            f"IS NULL has no probabilistic denotation; {self.attr!r} must be "
            "a certain column"
        )

    def __repr__(self) -> str:
        return f"({self.attr} IS {'NOT ' if self.negated else ''}NULL)"


class ColumnRef:
    """Marks the right operand of a comparison as a column reference."""

    def __init__(self, name: str):
        self.name = str(name)

    def __repr__(self) -> str:
        return f"col({self.name})"


def col(name: str) -> ColumnRef:
    """Reference another column in a comparison: ``Comparison("a", "<", col("b"))``."""
    return ColumnRef(name)


def _merge_boxes(regions: Sequence[Region], union: bool) -> Optional[Region]:
    """Combine all-box inputs into a single box when exact; None otherwise."""
    if not all(isinstance(r, BoxRegion) for r in regions):
        return None
    boxes = [r for r in regions if isinstance(r, BoxRegion)]
    if not union:
        out = boxes[0]
        for box in boxes[1:]:
            out = out.intersect_box(box)
        return out
    # A union of boxes is itself a box only when all constrain one shared attr.
    attr_sets = {box.attrs for box in boxes}
    if len(attr_sets) == 1 and len(next(iter(attr_sets))) == 1:
        (attr,) = next(iter(attr_sets))
        merged = IntervalSet.empty()
        for box in boxes:
            merged = merged.union(box.interval_set(attr))
        return BoxRegion({attr: merged})
    return None


class And(Predicate):
    """Conjunction of sub-predicates."""

    def __init__(self, parts: Sequence[Predicate]):
        if not parts:
            raise QueryError("AND needs at least one operand")
        self.parts = tuple(parts)

    def attrs(self) -> FrozenSet[str]:
        return frozenset().union(*(p.attrs() for p in self.parts))

    def evaluate(self, row: Mapping[str, object]) -> Optional[bool]:
        saw_unknown = False
        for p in self.parts:
            v = p.evaluate(row)
            if v is False:
                return False
            if v is None:
                saw_unknown = True
        return None if saw_unknown else True

    def to_region(self, resolver: Optional[LabelResolver] = None) -> Region:
        regions = [p.to_region(resolver) for p in self.parts]
        merged = _merge_boxes(regions, union=False)
        return merged if merged is not None else IntersectionRegion(regions)

    def __repr__(self) -> str:
        return "(" + " AND ".join(map(repr, self.parts)) + ")"


class Or(Predicate):
    """Disjunction of sub-predicates."""

    def __init__(self, parts: Sequence[Predicate]):
        if not parts:
            raise QueryError("OR needs at least one operand")
        self.parts = tuple(parts)

    def attrs(self) -> FrozenSet[str]:
        return frozenset().union(*(p.attrs() for p in self.parts))

    def evaluate(self, row: Mapping[str, object]) -> Optional[bool]:
        saw_unknown = False
        for p in self.parts:
            v = p.evaluate(row)
            if v is True:
                return True
            if v is None:
                saw_unknown = True
        return None if saw_unknown else False

    def to_region(self, resolver: Optional[LabelResolver] = None) -> Region:
        regions = [p.to_region(resolver) for p in self.parts]
        merged = _merge_boxes(regions, union=True)
        return merged if merged is not None else UnionRegion(regions)

    def __repr__(self) -> str:
        return "(" + " OR ".join(map(repr, self.parts)) + ")"


class Not(Predicate):
    """Negation of a sub-predicate."""

    def __init__(self, inner: Predicate):
        self.inner = inner

    def attrs(self) -> FrozenSet[str]:
        return self.inner.attrs()

    def evaluate(self, row: Mapping[str, object]) -> Optional[bool]:
        v = self.inner.evaluate(row)
        return None if v is None else not v

    def to_region(self, resolver: Optional[LabelResolver] = None) -> Region:
        region = self.inner.to_region(resolver)
        if isinstance(region, BoxRegion) and len(region.attrs) == 1:
            (attr,) = region.attrs
            return BoxRegion({attr: region.interval_set(attr).complement()})
        return region.complement()

    def __repr__(self) -> str:
        return f"NOT {self.inner!r}"
