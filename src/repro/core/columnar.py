"""Struct-of-arrays column views over vectors of probabilistic tuples.

A :class:`ColumnarSegment` snapshots an ordered tuple list and lazily
decomposes it, per dependency set, into an :class:`AttrColumn`: for each
symbolic pdf family present, a row-index vector plus that family's frozen
parameter arrays (``mu``/``sigma``, ``lo``/``hi``, ``rate``, …) gathered
once via :data:`repro.pdf.kernels.FAMILY_PARAMS`.  Selection predicates and
PROB threshold sweeps then run as fused ufunc kernels directly over the
parameter arrays — no per-tuple attribute lookups, no type dispatch, and no
pdf-op-cache fingerprinting in the hot loop.

The segment also exposes tuple-id and certain-value vectors so provenance
and certain columns travel with the batch in array form.

Rows whose pdf is ``None`` (NULL) and rows of non-kernelized types
(``FlooredPdf``, discrete materializations, mixtures, …) are recorded as
explicit index vectors so consumers can route them through the reference
tuple-at-a-time path; every consumer asserts bitwise equivalence with that
path, so a fallback is a performance event, never a semantic one.

Segments are immutable snapshots: ``tuples`` is copied at construction, so
later relation mutations cannot skew the row ↔ parameter alignment.  The
relation-level cache in :class:`~repro.core.model.ProbabilisticRelation`
invalidates on every mutation instead of patching segments in place.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..pdf.kernels import FAMILY_PARAMS

__all__ = ["AttrColumn", "ColumnarSegment"]

#: sentinel distinguishing "dependency set absent" from a NULL pdf
_MISSING = object()


class AttrColumn:
    """One dependency set of a tuple span, decomposed per pdf family.

    ``groups`` is a list of ``(family, rows, params, pdfs, lineages)`` where
    ``rows`` is an ascending ``np.intp`` index vector into the span,
    ``params`` the family's gathered parameter arrays (aligned with
    ``rows``), ``pdfs`` the original pdf objects (kept so survivors can be
    rebuilt by reference without re-materializing anything), and
    ``lineages`` the rows' history Λ for this dependency set — gathered once
    at build time so selection survivors don't pay a per-row dict lookup.
    ``null_rows`` are NULL pdfs; ``other_rows`` everything the kernels
    cannot sweep.
    """

    __slots__ = ("n", "groups", "null_rows", "other_rows")

    def __init__(
        self,
        n: int,
        groups: List[Tuple[type, np.ndarray, Tuple[np.ndarray, ...], list, list]],
        null_rows: np.ndarray,
        other_rows: np.ndarray,
    ):
        self.n = n
        self.groups = groups
        self.null_rows = null_rows
        self.other_rows = other_rows

    def slice(self, start: int, stop: int) -> "AttrColumn":
        """The column restricted to rows ``[start, stop)``, re-based to 0.

        Row vectors are ascending, so each group's window is a contiguous
        ``searchsorted`` range and the parameter arrays slice to views —
        per-batch column views over a shared segment cost O(window), not
        O(segment).
        """
        groups = []
        for fam, rows, params, pdfs, lineages in self.groups:
            a = int(np.searchsorted(rows, start))
            b = int(np.searchsorted(rows, stop))
            if a == b:
                continue
            groups.append(
                (
                    fam,
                    rows[a:b] - start,
                    tuple(p[a:b] for p in params),
                    pdfs[a:b],
                    lineages[a:b],
                )
            )

        def _window(idx: np.ndarray) -> np.ndarray:
            a = int(np.searchsorted(idx, start))
            b = int(np.searchsorted(idx, stop))
            return idx[a:b] - start

        return AttrColumn(
            stop - start, groups, _window(self.null_rows), _window(self.other_rows)
        )

    @property
    def kernel_rows(self) -> int:
        return sum(len(g[1]) for g in self.groups)


def _build_column(tuples: Sequence, dep: FrozenSet[str]) -> AttrColumn:
    by_family: Dict[type, Tuple[List[int], list, list]] = {}
    null_rows: List[int] = []
    other_rows: List[int] = []
    for i, t in enumerate(tuples):
        pdf = t.pdfs.get(dep, _MISSING)
        if pdf is None:
            null_rows.append(i)
            continue
        entry = by_family.get(type(pdf))
        if entry is not None:
            entry[0].append(i)
            entry[1].append(pdf)
            entry[2].append(t.lineage[dep])
        elif type(pdf) in FAMILY_PARAMS:
            by_family[type(pdf)] = ([i], [pdf], [t.lineage[dep]])
        else:
            # includes _MISSING: the fallback path raises the same KeyError
            # the scalar path would, instead of silently dropping the row
            other_rows.append(i)
    groups = [
        (fam, np.asarray(rows, dtype=np.intp), FAMILY_PARAMS[fam](pdfs), pdfs, lins)
        for fam, (rows, pdfs, lins) in by_family.items()
    ]
    return AttrColumn(
        len(tuples),
        groups,
        np.asarray(null_rows, dtype=np.intp),
        np.asarray(other_rows, dtype=np.intp),
    )


class ColumnarSegment:
    """A snapshot of an ordered tuple vector with lazily built columns.

    Columns are built on first use and cached per dependency set (and per
    certain attribute), so a relation-cached segment amortizes the gather
    cost across every scan batch and every repeated query over the same
    data.
    """

    __slots__ = ("tuples", "n", "_columns", "_certain", "_tuple_ids")

    def __init__(self, tuples: Sequence):
        self.tuples = list(tuples)
        self.n = len(self.tuples)
        self._columns: Dict[FrozenSet[str], AttrColumn] = {}
        self._certain: Dict[str, Optional[Tuple[np.ndarray, np.ndarray]]] = {}
        self._tuple_ids: Optional[np.ndarray] = None

    def column(self, dep: FrozenSet[str]) -> AttrColumn:
        col = self._columns.get(dep)
        if col is None:
            col = self._columns[dep] = _build_column(self.tuples, dep)
        return col

    def tuple_ids(self) -> np.ndarray:
        """Provenance vector: ``tuple_id`` per row, aligned with ``tuples``."""
        ids = self._tuple_ids
        if ids is None:
            ids = self._tuple_ids = np.array(
                [t.tuple_id for t in self.tuples], dtype=np.int64
            )
        return ids

    def certain_column(self, attr: str) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """``(values, null_mask)`` float64 arrays for a numeric certain column.

        ``None`` when the column holds non-numeric values (strings stay on
        the tuple path).  NULLs appear as ``nan`` with the mask set.
        """
        cached = self._certain.get(attr, False)
        if cached is not False:
            return cached  # type: ignore[return-value]
        vals = np.empty(self.n, dtype=float)
        mask = np.zeros(self.n, dtype=bool)
        try:
            for i, t in enumerate(self.tuples):
                v = t.certain.get(attr)
                if v is None:
                    mask[i] = True
                    vals[i] = np.nan
                else:
                    vals[i] = v
        except (TypeError, ValueError):
            self._certain[attr] = None
            return None
        out = (vals, mask)
        self._certain[attr] = out
        return out
