"""Operations on probability values (Section III-E).

Threshold queries — ``σ_{Pr(A) > p}(T)`` — filter tuples by the probability
mass they carry over an attribute set, rather than by the attribute values
themselves.  Because these predicates inspect the probabilistic model
directly (not a possible world), possible worlds semantics does not apply;
histories are simply copied over, as in selection Case 1.

:func:`tuple_probability` is also the general "does this tuple exist"
computation: ``Pr(all uncertain attributes)`` of a tuple is its existence
probability under the closed-world partial-pdf reading.
"""

from __future__ import annotations

import operator
from typing import Callable, FrozenSet, Iterable, Optional, Sequence

from ..errors import QueryError
from .history import Lineage
from .model import (
    DEFAULT_CONFIG,
    ModelConfig,
    ProbabilisticRelation,
    ProbabilisticTuple,
)
from .operations import cached_mass, cached_masses, product

__all__ = [
    "probability_of",
    "batch_probability_of",
    "columnar_probability_of",
    "tuple_probability",
    "threshold_select",
    "existence_probability",
]

_OPS: dict = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
    "=": lambda a, b: abs(a - b) < 1e-12,
}


def probability_of(
    t: ProbabilisticTuple,
    store,
    attrs: Optional[Iterable[str]] = None,
    config: ModelConfig = DEFAULT_CONFIG,
) -> float:
    """``Pr(A)`` for tuple ``t`` given a history store (no schema checks).

    Low-level worker shared by the model API and the engine executor.
    """
    if attrs is None:
        targets = list(t.pdfs.keys())
    else:
        wanted = set(attrs)
        targets = [dep for dep in t.pdfs if dep & wanted]

    inputs = []
    for dep in targets:
        pdf = t.pdfs[dep]
        if pdf is None:
            continue  # NULL pdf: the tuple exists with certainty
        inputs.append((pdf, t.lineage.get(dep, frozenset())))
    if not inputs:
        return 1.0
    joint, _ = product(inputs, store, config)
    return min(cached_mass(joint), 1.0)


def batch_probability_of(
    tuples: Sequence[ProbabilisticTuple],
    store,
    attrs: Optional[Iterable[str]] = None,
    config: ModelConfig = DEFAULT_CONFIG,
) -> list:
    """``Pr(A)`` for a batch of tuples; element-wise identical to
    :func:`probability_of`.

    Tuples whose target reduces to a single pdf (the common case — the
    ``product`` primitive is then the identity) have their masses computed
    in one vectorized kernel sweep through the pdf-op cache; tuples needing
    a genuine history-aware product fall back to the scalar path.
    """
    wanted = set(attrs) if attrs is not None else None
    out: list = [0.0] * len(tuples)
    single_idx = []
    single_pdfs = []
    for i, t in enumerate(tuples):
        if wanted is None:
            targets = list(t.pdfs.keys())
        else:
            targets = [dep for dep in t.pdfs if dep & wanted]
        inputs = [t.pdfs[dep] for dep in targets if t.pdfs[dep] is not None]
        if not inputs:
            out[i] = 1.0
        elif len(inputs) == 1:
            single_idx.append(i)
            single_pdfs.append(inputs[0])
        else:
            out[i] = probability_of(t, store, attrs, config)
    if single_idx:
        masses = cached_masses(single_pdfs)
        for i, m in zip(single_idx, masses):
            out[i] = min(m, 1.0)
    return out


def columnar_probability_of(
    batch,
    store,
    attrs: Optional[Iterable[str]] = None,
    config: ModelConfig = DEFAULT_CONFIG,
) -> list:
    """:func:`batch_probability_of` over a columnar batch.

    Applies when the batch's tuples carry exactly one dependency set (the
    common single-uncertain-column shape): NULL rows and raw symbolic-family
    rows resolve to probability 1.0 straight off the column's row vectors —
    a raw family's ``mass()`` is exactly 1.0, so ``min(mass, 1.0)`` needs no
    evaluation at all — and only the leftover rows (floored pdfs, discrete
    materializations, joints) pay the per-tuple target resolution of the
    reference path.  Any shape the column view cannot express falls back to
    :func:`batch_probability_of` wholesale; results are element-wise
    identical either way.
    """
    tuples = batch.tuples
    if not tuples:
        return []
    deps = list(tuples[0].pdfs.keys())
    if len(deps) != 1:
        return batch_probability_of(tuples, store, attrs, config)
    dep = deps[0]
    if attrs is not None and not (dep & set(attrs)):
        # no target dependency sets: every tuple exists with certainty
        return [1.0] * len(tuples)
    col = batch.attr_column(dep)
    if col is None:
        return batch_probability_of(tuples, store, attrs, config)

    out: list = [1.0] * len(tuples)
    if len(col.other_rows):
        other = col.other_rows.tolist()
        sub = batch_probability_of([tuples[i] for i in other], store, attrs, config)
        for i, p in zip(other, sub):
            out[i] = p
    return out


def tuple_probability(
    rel: ProbabilisticRelation,
    t: ProbabilisticTuple,
    attrs: Optional[Iterable[str]] = None,
    config: ModelConfig = DEFAULT_CONFIG,
) -> float:
    """``Pr(A)`` for tuple ``t``: the joint mass over the attribute set A.

    ``attrs`` defaults to every uncertain attribute of the tuple.  The
    computation builds the history-aware joint of all dependency sets that
    intersect A, so shared ancestors are counted once.  Certain attributes
    contribute probability 1; a NULL pdf contributes 1 as well (the tuple
    exists; only its values are unknown).
    """
    if attrs is not None:
        wanted = set(attrs)
        unknown = wanted - (set(rel.schema.visible_attrs) | rel.schema.phantom_attrs)
        if unknown:
            raise QueryError(f"unknown attributes in Pr(): {sorted(unknown)}")
    return probability_of(t, rel.store, attrs, config)


def existence_probability(
    rel: ProbabilisticRelation,
    t: ProbabilisticTuple,
    config: ModelConfig = DEFAULT_CONFIG,
) -> float:
    """The probability that tuple ``t`` exists at all."""
    return tuple_probability(rel, t, attrs=None, config=config)


def threshold_select(
    rel: ProbabilisticRelation,
    attrs: Optional[Sequence[str]],
    op: str,
    threshold: float,
    config: ModelConfig = DEFAULT_CONFIG,
) -> ProbabilisticRelation:
    """``σ_{Pr(attrs) op threshold}(rel)`` (Section III-E).

    ``attrs=None`` thresholds on the full tuple existence probability.
    Histories and pdfs of qualifying tuples are copied over unchanged.
    """
    if op not in _OPS:
        raise QueryError(f"unknown threshold operator {op!r}; use one of {sorted(_OPS)}")
    compare: Callable[[float, float], bool] = _OPS[op]
    out = rel.derived(rel.schema)
    for t in rel.tuples:
        p = tuple_probability(rel, t, attrs, config)
        if compare(p, threshold):
            out.add_tuple(ProbabilisticTuple(t.tuple_id, t.certain, t.pdfs, t.lineage))
    return out
