"""Histories: ancestor tracking for inter-tuple dependencies (Section II-C).

Every dependency set in a freshly inserted tuple is its own *top-level
ancestor* (Definition 2).  Any pdf derived from it by database operations
carries a reference back to the base pdf; two pdfs whose ancestor sets
intersect are *historically dependent* (Definition 3), and the ``product``
primitive must reconstruct their joint from the ancestors rather than
multiply marginals (the Figure 3 correctness example).

:class:`HistoryStore` owns the base pdfs.  It reference-counts them so that
deleting a base tuple keeps any still-referenced dependency set alive as a
*phantom node* until its reference count drops to zero, exactly as the paper
prescribes.

Because relational operators may rename attributes (e.g. disambiguating a
self-join), each history entry is an :class:`AncestorLink` — an ancestor
reference plus the mapping from the ancestor's base attribute names to the
derived pdf's current names.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from ..errors import HistoryError
from ..pdf.base import Pdf

__all__ = ["AncestorRef", "AncestorLink", "Lineage", "HistoryStore", "fresh_lineage"]


@dataclass(frozen=True)
class AncestorRef:
    """Identity of a base pdf: the inserting tuple and its dependency set."""

    tuple_id: int
    attrs: FrozenSet[str]

    def __repr__(self) -> str:
        return f"t{self.tuple_id}.{{{','.join(sorted(self.attrs))}}}"


@dataclass(frozen=True)
class AncestorLink:
    """An ancestor reference plus the base-name -> current-name mapping."""

    ref: AncestorRef
    mapping: Tuple[Tuple[str, str], ...]

    @classmethod
    def identity(cls, ref: AncestorRef) -> "AncestorLink":
        return cls(ref, tuple(sorted((a, a) for a in ref.attrs)))

    def mapping_dict(self) -> Dict[str, str]:
        return dict(self.mapping)

    def renamed(self, renames: Mapping[str, str]) -> "AncestorLink":
        """Compose an attribute rename onto the link's mapping."""
        new_mapping = tuple(
            sorted((base, renames.get(current, current)) for base, current in self.mapping)
        )
        return AncestorLink(self.ref, new_mapping)

    def __repr__(self) -> str:
        renames = [f"{b}->{c}" for b, c in self.mapping if b != c]
        suffix = f"[{','.join(renames)}]" if renames else ""
        return f"{self.ref!r}{suffix}"


#: The history Λ(t.S) of one dependency set: its set of ancestor links.
Lineage = FrozenSet[AncestorLink]


def fresh_lineage(ref: AncestorRef) -> Lineage:
    """The lineage of a newly inserted base pdf: itself (Definition 2)."""
    return frozenset({AncestorLink.identity(ref)})


def rename_lineage(lineage: Lineage, renames: Mapping[str, str]) -> Lineage:
    """Apply an attribute rename to every link of a lineage."""
    return frozenset(link.renamed(renames) for link in lineage)


def historically_dependent(a: Lineage, b: Lineage) -> bool:
    """Definition 3: lineages sharing any ancestor *reference*."""
    refs_a = {link.ref for link in a}
    return any(link.ref in refs_a for link in b)


@dataclass
class _Entry:
    pdf: Pdf
    refcount: int = 0
    #: False once the owning base tuple was deleted (phantom node).
    alive: bool = True


class HistoryStore:
    """Registry of base pdfs with reference counting and phantom nodes."""

    def __init__(self) -> None:
        self._entries: Dict[AncestorRef, _Entry] = {}
        #: secondary index: tuple_id -> its registered refs (kept in sync so
        #: base-tuple deletion and transaction undo capture are O(refs), not
        #: O(store)).
        self._by_tuple: Dict[int, set] = {}
        self._next_tuple_id = 0
        self._id_lock = threading.Lock()

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_id_lock"]
        del state["_by_tuple"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._id_lock = threading.Lock()
        self._rebuild_by_tuple()

    def _rebuild_by_tuple(self) -> None:
        """Recompute the tuple-id index from ``_entries``.

        Called after code paths that write ``_entries`` directly (snapshot
        load, transaction undo restore).
        """
        self._by_tuple = {}
        for ref in self._entries:
            self._by_tuple.setdefault(ref.tuple_id, set()).add(ref)

    def _index_add(self, ref: AncestorRef) -> None:
        self._by_tuple.setdefault(ref.tuple_id, set()).add(ref)

    def _index_discard(self, ref: AncestorRef) -> None:
        refs = self._by_tuple.get(ref.tuple_id)
        if refs is not None:
            refs.discard(ref)
            if not refs:
                del self._by_tuple[ref.tuple_id]

    def refs_of_tuple(self, tuple_id: int) -> frozenset:
        """Every registered ref (live or phantom) owned by ``tuple_id``."""
        return frozenset(self._by_tuple.get(tuple_id, ()))

    # -- identity ---------------------------------------------------------

    def new_tuple_id(self) -> int:
        """A unique id for a newly inserted base tuple.

        Locked: join workers in the parallel executor draw ids
        concurrently, and ``+= 1`` is not atomic under free threading.
        """
        with self._id_lock:
            self._next_tuple_id += 1
            return self._next_tuple_id

    def new_tuple_ids(self, n: int):
        """``n`` consecutive fresh ids, taking the lock once.

        Returns ``range(first, first + n)`` — the exact sequence ``n``
        successive :meth:`new_tuple_id` calls would have produced, so batch
        producers (the columnar hash join) can pre-allocate ids for a whole
        probe sweep without changing the id stream relative to the
        tuple-at-a-time reference path.
        """
        if n <= 0:
            return range(0)
        with self._id_lock:
            first = self._next_tuple_id + 1
            self._next_tuple_id += n
        return range(first, first + n)

    # -- registration -------------------------------------------------------

    def register_base(self, tuple_id: int, pdf: Pdf) -> AncestorRef:
        """Record a base pdf at insert time and return its reference."""
        ref = AncestorRef(tuple_id, frozenset(pdf.attrs))
        if ref in self._entries:
            raise HistoryError(f"ancestor {ref!r} is already registered")
        self._entries[ref] = _Entry(pdf=pdf)
        self._index_add(ref)
        return ref

    def __contains__(self, ref: AncestorRef) -> bool:
        return ref in self._entries

    def pdf(self, ref: AncestorRef) -> Pdf:
        """The base pdf for ``ref`` (works for phantom nodes too)."""
        entry = self._entries.get(ref)
        if entry is None:
            raise HistoryError(f"unknown or fully-released ancestor {ref!r}")
        return entry.pdf

    def is_phantom(self, ref: AncestorRef) -> bool:
        entry = self._entries.get(ref)
        if entry is None:
            raise HistoryError(f"unknown or fully-released ancestor {ref!r}")
        return not entry.alive

    # -- reference counting -----------------------------------------------------

    def acquire(self, lineage: Iterable[AncestorLink]) -> None:
        """Increment refcounts for every ancestor a derived pdf points to."""
        for link in lineage:
            entry = self._entries.get(link.ref)
            if entry is None:
                raise HistoryError(f"cannot reference unknown ancestor {link.ref!r}")
            entry.refcount += 1

    def release(self, lineage: Iterable[AncestorLink]) -> None:
        """Decrement refcounts; drop phantom nodes that reach zero."""
        for link in lineage:
            entry = self._entries.get(link.ref)
            if entry is None:
                raise HistoryError(f"cannot release unknown ancestor {link.ref!r}")
            if entry.refcount <= 0:
                raise HistoryError(f"refcount underflow for {link.ref!r}")
            entry.refcount -= 1
            if entry.refcount == 0 and not entry.alive:
                del self._entries[link.ref]
                self._index_discard(link.ref)

    def delete_base_tuple(self, tuple_id: int) -> None:
        """Base-tuple deletion: referenced sets become phantom nodes.

        Unreferenced dependency sets disappear immediately; referenced ones
        are kept (phantom) until their reference count falls to zero.
        """
        for ref in list(self._by_tuple.get(tuple_id, ())):
            entry = self._entries[ref]
            if entry.refcount == 0:
                del self._entries[ref]
                self._index_discard(ref)
            else:
                entry.alive = False

    # -- introspection --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, int]:
        """Counts of live and phantom ancestor nodes (for tests/benchmarks)."""
        phantom = sum(1 for e in self._entries.values() if not e.alive)
        return {"total": len(self._entries), "phantom": phantom}
