"""Aggregates over uncertain attributes.

Section I of the paper motivates continuous representations with aggregates:
the exact sum of n discrete uncertain attributes can have exponentially many
values, while a continuous (moment-matched) approximation is constant size.
These operators provide both, plus COUNT / MIN / MAX:

* ``count_distribution`` — the Poisson-binomial distribution of how many
  tuples exist (exact dynamic program over existence probabilities),
* ``sum_distribution`` — exact discrete convolution or Gaussian / histogram
  approximations; absent tuples contribute zero,
* ``min_distribution`` / ``max_distribution`` — via cdf products on a grid,
* ``expected_value`` — E[attr] weighted by existence.

All of these assume the aggregated tuples are *historically independent*;
:func:`assert_tuples_independent` verifies that from the lineages and raises
otherwise (correlated aggregation would require joint enumeration).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..errors import QueryError, UnsupportedOperationError
from ..pdf.arithmetic import convolve_histograms, sum_independent
from ..pdf.base import UnivariatePdf
from ..pdf.continuous import ExponentialPdf, GaussianPdf, UniformPdf
from ..pdf.convert import to_histogram
from ..pdf.discrete import DiscretePdf
from ..pdf.histogram import HistogramPdf
from .model import DEFAULT_CONFIG, ModelConfig, ProbabilisticRelation
from .threshold import tuple_probability

__all__ = [
    "assert_tuples_independent",
    "count_distribution",
    "count_from_probs",
    "sum_distribution",
    "expected_value",
    "expected_contributions",
    "min_distribution",
    "max_distribution",
]


def assert_tuples_independent(rel: ProbabilisticRelation) -> None:
    """Raise unless no two tuples share an ancestor."""
    seen: set = set()
    for t in rel.tuples:
        refs = {link.ref for lineage in t.lineage.values() for link in lineage}
        if refs & seen:
            raise UnsupportedOperationError(
                "aggregate requires historically independent tuples; "
                f"shared ancestors: {sorted(map(repr, refs & seen))}"
            )
        seen |= refs


def _attr_pdf(rel: ProbabilisticRelation, t, attr: str) -> UnivariatePdf:
    dep = t.dependency_set_of(attr)
    if dep is None:
        raise QueryError(f"attribute {attr!r} is certain; aggregate it directly")
    pdf = t.pdfs[dep]
    if pdf is None:
        raise QueryError(f"attribute {attr!r} is NULL in tuple #{t.tuple_id}")
    marginal = pdf.marginalize([attr])
    if not isinstance(marginal, UnivariatePdf):
        raise UnsupportedOperationError(
            f"marginal of {attr!r} is not univariate: {type(marginal).__name__}"
        )
    return marginal


def count_from_probs(probs: Sequence[float]) -> DiscretePdf:
    """The Poisson-binomial COUNT distribution from existence probabilities.

    The shared dynamic program behind :func:`count_distribution`; the
    columnar GROUP BY path calls it directly with vectorized per-group
    probability slices, so both paths run the identical left-to-right
    recurrence and build the identical :class:`DiscretePdf`.
    """
    # Degenerate shortcut: with every p exactly 0.0 or 1.0 the recurrence
    # only multiplies by exact 0.0/1.0, i.e. shifts the point mass — the
    # result is bitwise the same point distribution, computed in O(n).
    # This is the common all-raw-pdfs case (existence probability 1).
    if all(p == 1.0 or p == 0.0 for p in probs):
        k = sum(1 for p in probs if p == 1.0)
        return DiscretePdf({float(k): 1.0}, attr="count")
    dist = np.zeros(len(probs) + 1)
    dist[0] = 1.0
    for p in probs:
        dist[1:] = dist[1:] * (1.0 - p) + dist[:-1] * p
        dist[0] *= 1.0 - p
    return DiscretePdf(
        {float(k): float(v) for k, v in enumerate(dist) if v > 0.0}, attr="count"
    )


def count_distribution(
    rel: ProbabilisticRelation, config: ModelConfig = DEFAULT_CONFIG
) -> DiscretePdf:
    """The exact distribution of COUNT(*) (a Poisson-binomial).

    Dynamic program over per-tuple existence probabilities; O(n^2) time,
    exact for any mix of certain and partial tuples.
    """
    assert_tuples_independent(rel)
    probs = [tuple_probability(rel, t, config=config) for t in rel.tuples]
    return count_from_probs(probs)


def _contribution(marginal: UnivariatePdf) -> UnivariatePdf:
    """A tuple's contribution to SUM: its value, or 0 when absent."""
    missing = 1.0 - marginal.mass()
    if missing <= 1e-12:
        return marginal
    if isinstance(marginal, DiscretePdf):
        pairs = dict(marginal.items())
        pairs[0.0] = pairs.get(0.0, 0.0) + missing
        return DiscretePdf(pairs, attr=marginal.attr)
    # Continuous partial pdf: fold the absence atom in via moment matching.
    mu = marginal.mean() * marginal.mass()
    second = (marginal.variance() + marginal.mean() ** 2) * marginal.mass()
    var = second - mu**2
    if var <= 0:
        raise UnsupportedOperationError("degenerate contribution variance")
    return GaussianPdf(mu, var, attr=marginal.attr)


def sum_distribution(
    rel: ProbabilisticRelation,
    attr: str,
    method: str = "auto",
    config: ModelConfig = DEFAULT_CONFIG,
) -> UnivariatePdf:
    """The distribution of SUM(attr) over independent tuples.

    ``method`` is forwarded to :func:`repro.pdf.arithmetic.sum_independent`:
    ``"exact"`` performs the (potentially exponential) discrete convolution,
    ``"gaussian"`` the paper's constant-size continuous approximation.
    Absent tuples (partial pdfs) contribute zero.
    """
    assert_tuples_independent(rel)
    if not rel.tuples:
        return DiscretePdf({0.0: 1.0}, attr="sum")
    contributions = [
        _contribution(_attr_pdf(rel, t, attr)) for t in rel.tuples
    ]
    return sum_independent(contributions, method=method, attr="sum")


def expected_value(
    rel: ProbabilisticRelation, attr: str, config: ModelConfig = DEFAULT_CONFIG
) -> float:
    """E[SUM(attr)] = sum of existence-weighted means (always exact)."""
    total = 0.0
    for t in rel.tuples:
        marginal = _attr_pdf(rel, t, attr)
        total += marginal.mean() * marginal.mass()
    return total


#: families whose mean has a closed form the scalar method computes with the
#: same IEEE expression — elementwise array evaluation is bitwise identical.
#: A raw symbolic family's mass() is exactly 1.0, so the contribution is
#: mean * 1.0 (preserved to mirror the scalar product exactly).
_CLOSED_FORM_MEAN = {
    GaussianPdf: lambda params: params[0] * 1.0,
    UniformPdf: lambda params: 0.5 * (params[0] + params[1]) * 1.0,
    ExponentialPdf: lambda params: (1.0 / params[0]) * 1.0,
}


def expected_contributions(tuples: Sequence, attr: str, col) -> np.ndarray:
    """Per-row EXPECTED contributions ``marginal.mean() * marginal.mass()``.

    The columnar GROUP BY path's row-major worker: rows of the
    Gaussian / Uniform / Exponential families evaluate as one ufunc sweep
    over the :class:`~repro.core.columnar.AttrColumn` parameter arrays;
    every other row replicates the scalar :func:`expected_value` body
    exactly.  Raises the same errors the scalar loop would, though possibly
    for a different row — callers must fall back to the reference loop on
    any error so messages surface in reference order.
    """
    if len(col.null_rows):
        i = int(col.null_rows[0])
        raise QueryError(f"attribute {attr!r} is NULL in tuple #{tuples[i].tuple_id}")
    out = np.zeros(col.n, dtype=float)
    for fam, rows, params, pdfs, _lins in col.groups:
        closed = _CLOSED_FORM_MEAN.get(fam)
        if closed is not None:
            out[rows] = closed(params)
            continue
        for i, pdf in zip(rows, pdfs):
            marginal = pdf.marginalize([attr])
            if not isinstance(marginal, UnivariatePdf):
                raise UnsupportedOperationError(
                    f"marginal of {attr!r} is not univariate: "
                    f"{type(marginal).__name__}"
                )
            out[i] = marginal.mean() * marginal.mass()
    for i in col.other_rows:
        marginal = _attr_pdf(None, tuples[i], attr)
        out[i] = marginal.mean() * marginal.mass()
    return out


def _extreme_distribution(
    rel: ProbabilisticRelation, attr: str, bins: int, largest: bool
) -> HistogramPdf:
    assert_tuples_independent(rel)
    if not rel.tuples:
        raise QueryError("MIN/MAX over an empty relation is undefined")
    marginals: List[UnivariatePdf] = []
    for t in rel.tuples:
        marginal = _attr_pdf(rel, t, attr)
        if marginal.mass() < 1.0 - 1e-9:
            raise UnsupportedOperationError(
                "MIN/MAX needs full-mass tuples (every tuple must exist)"
            )
        marginals.append(marginal)
    lo = min(m.support()[m.attr][0] for m in marginals)
    hi = max(m.support()[m.attr][1] for m in marginals)
    if hi <= lo:
        hi = lo + 1e-9
    edges = np.linspace(lo, hi, bins + 1)
    cdf = np.ones(len(edges))
    for m in marginals:
        values = np.clip(m.cdf(edges), 0.0, 1.0)
        cdf *= values if largest else (1.0 - values)
    result_cdf = cdf if largest else 1.0 - cdf
    masses = np.clip(np.diff(result_cdf), 0.0, None)
    # Clamp boundary leakage (cdf might not quite reach 0/1 at the edges).
    total = masses.sum()
    if total > 0:
        masses = masses * min(1.0, 1.0 / total)
    name = "max" if largest else "min"
    return HistogramPdf(edges, masses, attr=name)


def max_distribution(
    rel: ProbabilisticRelation, attr: str, bins: int = 256
) -> HistogramPdf:
    """The distribution of MAX(attr): P(max <= x) = prod of cdfs."""
    return _extreme_distribution(rel, attr, bins, largest=True)


def min_distribution(
    rel: ProbabilisticRelation, attr: str, bins: int = 256
) -> HistogramPdf:
    """The distribution of MIN(attr): P(min > x) = prod of tail cdfs."""
    return _extreme_distribution(rel, attr, bins, largest=False)
