"""The paper's probabilistic relational model.

Schemas with dependency information, tuples with (partial) pdfs, histories,
and the relational operators — selection, projection, join, threshold
selection, aggregates — all closed under possible worlds semantics.
"""

from .aggregates import (
    assert_tuples_independent,
    count_distribution,
    expected_value,
    max_distribution,
    min_distribution,
    sum_distribution,
)
from .history import (
    AncestorLink,
    AncestorRef,
    HistoryStore,
    Lineage,
    fresh_lineage,
    historically_dependent,
    rename_lineage,
)
from .distinct import EXISTS_ATTR, distinct
from .join import collapse_history, cross_product, join, prefix_attrs, rename
from .nearest import distance_distribution, nearest_neighbor_probabilities
from .model import (
    Column,
    build_base_tuple,
    DataType,
    DEFAULT_CONFIG,
    ModelConfig,
    ProbabilisticRelation,
    ProbabilisticSchema,
    ProbabilisticTuple,
)
from .operations import floor, marginalize, product, support_region
from .possible_worlds import (
    PossibleWorld,
    enumerate_worlds,
    expected_multiplicities,
    model_multiplicities,
    multiplicities_match,
    world_join,
    world_project,
    world_select,
)
from .predicates import And, Comparison, IsNull, Not, Or, Predicate, TruePredicate, col
from .project import ProjectionPlan, project
from .simulate import estimate_expected_rows, sample_worlds
from .select import SelectionPlan, closure, select
from .threshold import existence_probability, threshold_select, tuple_probability

__all__ = [
    # model
    "DataType",
    "Column",
    "ProbabilisticSchema",
    "ProbabilisticTuple",
    "ProbabilisticRelation",
    "ModelConfig",
    "DEFAULT_CONFIG",
    # history
    "AncestorRef",
    "AncestorLink",
    "Lineage",
    "HistoryStore",
    "fresh_lineage",
    "historically_dependent",
    "rename_lineage",
    # primitives
    "product",
    "marginalize",
    "floor",
    "support_region",
    # predicates
    "Predicate",
    "Comparison",
    "IsNull",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "col",
    # operators
    "select",
    "closure",
    "SelectionPlan",
    "project",
    "ProjectionPlan",
    "join",
    "cross_product",
    "rename",
    "prefix_attrs",
    "collapse_history",
    "threshold_select",
    "tuple_probability",
    "existence_probability",
    # aggregates
    "distinct",
    "EXISTS_ATTR",
    "distance_distribution",
    "nearest_neighbor_probabilities",
    "count_distribution",
    "sum_distribution",
    "expected_value",
    "min_distribution",
    "max_distribution",
    "assert_tuples_independent",
    # possible worlds
    "PossibleWorld",
    "enumerate_worlds",
    "world_select",
    "world_project",
    "world_join",
    "expected_multiplicities",
    "model_multiplicities",
    "multiplicities_match",
    # simulation
    "sample_worlds",
    "estimate_expected_rows",
    "build_base_tuple",
]
