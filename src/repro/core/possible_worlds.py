"""Possible Worlds Semantics, executed literally (Section I-A).

This module is the *reference implementation* the efficient operators are
tested against: it expands a (small, discrete) probabilistic database into
every possible world, runs the query over each world with ordinary certain
semantics, and aggregates the per-world results.  Figure 1 of the paper as
code.

Only *base* relations can be expanded — relations whose dependency sets are
their own ancestors (fresh inserts), with exactly representable discrete
pdfs.  That is precisely the right shape for a specification: a query
pipeline evaluated by the model operators must agree with the same pipeline
evaluated world-by-world from the base data.

The comparison currency is the **expected multiplicity** of each distinct
result row: sum over worlds of P(world) x (number of copies of the row in
that world's result).  The model side computes the same quantity from the
result tuples' joint pdfs.  Exact agreement on every row is what Theorems 1
and 2 promise.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Tuple

from ..errors import UnsupportedOperationError
from ..pdf.joint import as_joint_discrete
from .history import AncestorLink
from .model import DEFAULT_CONFIG, ModelConfig, ProbabilisticRelation
from .operations import product
from .predicates import Predicate

__all__ = [
    "Row",
    "PossibleWorld",
    "enumerate_worlds",
    "world_select",
    "world_project",
    "world_join",
    "expected_multiplicities",
    "model_multiplicities",
    "multiplicities_match",
]

Row = Dict[str, float]
WorldDb = Dict[str, List[Row]]


@dataclass
class PossibleWorld:
    """One fully-certain database instance and its probability."""

    relations: WorldDb
    probability: float


def _tuple_outcomes(rel: ProbabilisticRelation, t) -> List[List[Tuple[float, Optional[Row]]]]:
    """Per dependency set: [(prob, value assignment or None for absent)]."""
    outcome_lists: List[List[Tuple[float, Optional[Row]]]] = []
    for dep, pdf in t.pdfs.items():
        lineage = t.lineage.get(dep, frozenset())
        expected = frozenset({AncestorLink.identity(link.ref) for link in lineage})
        if pdf is not None and (len(lineage) != 1 or lineage != expected):
            raise UnsupportedOperationError(
                "possible-worlds expansion needs base relations whose "
                "dependency sets are their own ancestors"
            )
        if pdf is None:
            raise UnsupportedOperationError(
                "possible-worlds expansion does not support NULL pdfs"
            )
        discrete = as_joint_discrete(pdf)
        if discrete is None:
            raise UnsupportedOperationError(
                f"dependency set {sorted(dep)} is not exactly discrete; "
                "possible-worlds expansion needs discrete base data"
            )
        outcomes: List[Tuple[float, Optional[Row]]] = [
            (p, dict(zip(discrete.attrs, key))) for key, p in discrete.items() if p > 0
        ]
        missing = 1.0 - discrete.mass()
        if missing > 1e-12:
            outcomes.append((missing, None))
        outcome_lists.append(outcomes)
    return outcome_lists


def enumerate_worlds(
    db: Mapping[str, ProbabilisticRelation]
) -> Iterator[PossibleWorld]:
    """Expand a database of base relations into all possible worlds.

    Every (tuple, dependency set) pair is an independent probabilistic
    event; a tuple appears in a world only when *all* its dependency sets
    drew a value (a partial pdf's missing mass is the "absent" outcome).
    """
    choice_points: List[List[Tuple[float, Optional[Row]]]] = []
    # (relation name, tuple index, certain values, [choice indices])
    layout: List[Tuple[str, int, Dict[str, object], List[int]]] = []
    for name, rel in db.items():
        for t_index, t in enumerate(rel.tuples):
            indices = []
            for outcomes in _tuple_outcomes(rel, t):
                indices.append(len(choice_points))
                choice_points.append(outcomes)
            layout.append((name, t_index, dict(t.certain), indices))

    for combo in itertools.product(*choice_points):
        probability = 1.0
        for prob, _ in combo:
            probability *= prob
        if probability <= 0.0:
            continue
        world: WorldDb = {name: [] for name in db}
        for name, _t_index, certain, indices in layout:
            row: Row = dict(certain)  # type: ignore[arg-type]
            present = True
            for idx in indices:
                _, assignment = combo[idx]
                if assignment is None:
                    present = False
                    break
                row.update(assignment)
            if present:
                world[name].append(row)
        yield PossibleWorld(world, probability)


# ---------------------------------------------------------------------------
# Certain relational algebra over world rows
# ---------------------------------------------------------------------------


def world_select(rows: Iterable[Row], predicate: Predicate) -> List[Row]:
    """σ over certain rows (the per-world query of Figure 1)."""
    return [r for r in rows if predicate.evaluate(r) is True]


def world_project(rows: Iterable[Row], attrs: Iterable[str]) -> List[Row]:
    """Π over certain rows (bag semantics, no duplicate elimination)."""
    names = list(attrs)
    return [{a: r[a] for a in names} for r in rows]


def world_join(
    left: Iterable[Row], right: Iterable[Row], predicate: Predicate
) -> List[Row]:
    """⋈ over certain rows; attribute names must already be disjoint."""
    out = []
    for l, r in itertools.product(left, right):
        combined = {**l, **r}
        if predicate.evaluate(combined) is True:
            out.append(combined)
    return out


# ---------------------------------------------------------------------------
# Result comparison: expected multiplicities
# ---------------------------------------------------------------------------

RowKey = FrozenSet[Tuple[str, float]]


def _row_key(row: Row) -> RowKey:
    return frozenset((k, float(v)) for k, v in row.items())


def expected_multiplicities(
    db: Mapping[str, ProbabilisticRelation],
    query: Callable[[WorldDb], List[Row]],
) -> Dict[RowKey, float]:
    """E[multiplicity of each result row] by brute-force world expansion."""
    acc: Dict[RowKey, float] = {}
    for world in enumerate_worlds(db):
        for row in query(world.relations):
            key = _row_key(row)
            acc[key] = acc.get(key, 0.0) + world.probability
    return {k: v for k, v in acc.items() if v > 1e-15}


def model_multiplicities(
    rel: ProbabilisticRelation, config: ModelConfig = DEFAULT_CONFIG
) -> Dict[RowKey, float]:
    """E[multiplicity of each result row] from the model's result tuples.

    For each result tuple the history-aware joint over all its dependency
    sets is built, marginalised to the visible uncertain attributes, and its
    entries — combined with the tuple's certain values — contribute their
    probability as multiplicity.
    """
    visible = list(rel.schema.visible_attrs)
    acc: Dict[RowKey, float] = {}
    for t in rel.tuples:
        inputs = []
        for dep, pdf in t.pdfs.items():
            if pdf is None:
                raise UnsupportedOperationError("NULL pdfs have no multiplicity")
            inputs.append((pdf, t.lineage.get(dep, frozenset())))
        certain_part = {a: t.certain[a] for a in visible if a in t.certain}
        if not inputs:
            key = _row_key(certain_part)  # fully certain tuple
            acc[key] = acc.get(key, 0.0) + 1.0
            continue
        joint, _ = product(inputs, rel.store, config)
        visible_uncertain = [a for a in joint.attrs if a in visible]
        if visible_uncertain:
            marginal = joint.marginalize(visible_uncertain)
        else:
            marginal = joint  # everything phantom: only the mass matters
        discrete = as_joint_discrete(marginal)
        if discrete is None:
            raise UnsupportedOperationError(
                "model_multiplicities needs discrete result pdfs"
            )
        for key_vals, p in discrete.items():
            if p <= 0:
                continue
            row = dict(certain_part)
            if visible_uncertain:
                row.update(dict(zip(discrete.attrs, key_vals)))
            key = _row_key(row)
            acc[key] = acc.get(key, 0.0) + p
    return {k: v for k, v in acc.items() if v > 1e-15}


def multiplicities_match(
    a: Mapping[RowKey, float], b: Mapping[RowKey, float], tol: float = 1e-9
) -> bool:
    """True when two multiplicity maps agree within ``tol`` on every row."""
    keys = set(a) | set(b)
    return all(abs(a.get(k, 0.0) - b.get(k, 0.0)) <= tol for k in keys)
