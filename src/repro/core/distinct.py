"""Duplicate elimination — the paper's future-work operator, restricted.

Section III-B: "we do not address the issue of duplicate elimination in
projections in this paper ... the concept of duplicate elimination for
probabilistic data in general leads to complex historical dependencies."

This module implements the tractable fragment:

* every *visible* attribute of the input must be **certain** (project the
  uncertain ones away first — their dependency sets may persist as
  phantoms carrying existence mass),
* tuples carrying the same certain values must be **historically
  independent** of each other (lineages disjoint), so that
  ``P(row in result) = 1 - prod(1 - P(tuple_i exists))`` is exact.

Each distinct row becomes one output tuple whose existence probability is
carried by a phantom ``__exists`` dependency set — the model's uniform way
of encoding "this tuple is present with probability p".  Inputs that fall
outside the fragment raise :class:`UnsupportedOperationError` with the
paper's caveat, rather than returning silently wrong probabilities.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import UnsupportedOperationError
from ..pdf.discrete import DiscretePdf
from .history import Lineage, historically_dependent
from .model import (
    DEFAULT_CONFIG,
    ModelConfig,
    ProbabilisticRelation,
    ProbabilisticSchema,
    ProbabilisticTuple,
)
from .threshold import probability_of

__all__ = ["distinct", "EXISTS_ATTR"]

#: Phantom attribute name carrying a distinct row's existence probability.
EXISTS_ATTR = "__exists"


def distinct(
    rel: ProbabilisticRelation, config: ModelConfig = DEFAULT_CONFIG
) -> ProbabilisticRelation:
    """Bag-to-set conversion over certain-valued rows.

    Returns a relation with the same certain columns and one tuple per
    distinct value combination; existence probabilities are combined under
    historical independence (verified, not assumed).
    """
    uncertain_visible = sorted(rel.schema.uncertain_attrs)
    if uncertain_visible:
        raise UnsupportedOperationError(
            "duplicate elimination over uncertain attributes leads to complex "
            "historical dependencies (paper Section III-B, future work); "
            f"project away {uncertain_visible} or aggregate instead"
        )

    groups: Dict[Tuple, List[ProbabilisticTuple]] = {}
    order: List[Tuple] = []
    columns = rel.schema.visible_attrs
    for t in rel.tuples:
        key = tuple(t.certain.get(c) for c in columns)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(t)

    out_schema = ProbabilisticSchema(rel.schema.columns, [{EXISTS_ATTR}])
    out = rel.derived(out_schema)
    for key in order:
        members = groups[key]
        lineages = [
            frozenset().union(*t.lineage.values()) if t.lineage else frozenset()
            for t in members
        ]
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                if historically_dependent(lineages[i], lineages[j]):
                    raise UnsupportedOperationError(
                        "duplicate elimination over historically dependent "
                        "tuples is not supported (paper Section III-B); "
                        f"rows {members[i].tuple_id} and {members[j].tuple_id} "
                        "share ancestors"
                    )
        absent = 1.0
        for t in members:
            absent *= 1.0 - probability_of(t, rel.store, None, config)
        exists = 1.0 - absent
        combined: Lineage = frozenset().union(*lineages)
        out.add_tuple(
            ProbabilisticTuple(
                rel.store.new_tuple_id(),
                dict(zip(columns, key)),
                {frozenset({EXISTS_ATTR}): DiscretePdf({1.0: exists}, attr=EXISTS_ATTR)},
                {frozenset({EXISTS_ATTR}): combined},
            )
        )
    return out
