"""Monte Carlo world sampling: the continuous counterpart of enumeration.

`repro.core.possible_worlds` expands *discrete* databases into all worlds
exactly; for continuous data the world set is infinite, so the paper's
Figure 1 semantics can only be *sampled*.  This module draws concrete
worlds from base relations — every dependency set realises a value (or the
tuple goes absent with its partial-mass probability) — turning any query
pipeline into an estimable statistic:

    estimate = (1 / N) * sum over sampled worlds of |query(world)|

Used by the test suite to validate continuous operator pipelines that the
exact enumerator cannot reach, and available to users as a generic
"explain this probability by simulation" tool.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Mapping

import numpy as np

from ..errors import UnsupportedOperationError
from .model import ProbabilisticRelation
from .possible_worlds import Row, WorldDb

__all__ = ["sample_worlds", "estimate_expected_rows"]


def sample_worlds(
    db: Mapping[str, ProbabilisticRelation],
    rng: np.random.Generator,
    n: int,
) -> Iterator[WorldDb]:
    """Draw ``n`` independent worlds from a database of base relations.

    Requires base relations (each dependency set its own ancestor), exactly
    like :func:`~repro.core.possible_worlds.enumerate_worlds`, but places no
    discreteness restriction: any sampleable pdf works.  NULL pdfs are not
    supported (a world must assign concrete values).
    """
    # Pre-draw everything vectorised: per (relation, tuple, dep set) an
    # existence draw plus n value samples.
    layout = []  # (name, certain, [(attrs, values-dict, exists-array)])
    for name, rel in db.items():
        for t in rel.tuples:
            sets = []
            for dep, pdf in t.pdfs.items():
                if pdf is None:
                    raise UnsupportedOperationError(
                        "world sampling does not support NULL pdfs"
                    )
                lineage = t.lineage.get(dep, frozenset())
                if len(lineage) != 1:
                    raise UnsupportedOperationError(
                        "world sampling needs base relations whose dependency "
                        "sets are their own ancestors"
                    )
                mass = pdf.mass()
                exists = rng.random(n) < mass
                values = pdf.sample(rng, n) if mass > 1e-12 else None
                sets.append((values, exists))
            layout.append((name, dict(t.certain), sets))

    for i in range(n):
        world: WorldDb = {name: [] for name in db}
        for name, certain, sets in layout:
            row: Row = dict(certain)  # type: ignore[arg-type]
            present = True
            for values, exists in sets:
                if not exists[i] or values is None:
                    present = False
                    break
                for attr, arr in values.items():
                    row[attr] = float(arr[i])
            if present:
                world[name].append(row)
        yield world


def estimate_expected_rows(
    db: Mapping[str, ProbabilisticRelation],
    query: Callable[[WorldDb], List[Row]],
    rng: np.random.Generator,
    n: int = 10_000,
) -> float:
    """Monte Carlo estimate of E[|query result|] under world semantics.

    The continuous analogue of summing
    :func:`~repro.core.possible_worlds.expected_multiplicities`: the
    expected total number of result rows, up to O(1/sqrt(n)) noise.
    """
    total = 0
    for world in sample_worlds(db, rng, n):
        total += len(query(world))
    return total / n
