"""Synthetic workload generators matching the paper's experimental setup."""

from .annotations import (
    AnnotatedToken,
    DEFAULT_LABELS,
    annotations_schema,
    generate_annotations,
    load_annotations_relation,
)
from .moving_objects import (
    MovingObject,
    generate_moving_objects,
    load_objects_relation,
    objects_schema,
)
from .sensors import (
    RangeQuery,
    Reading,
    generate_range_queries,
    generate_readings,
    load_readings_relation,
    make_readings,
    readings_schema,
)

__all__ = [
    "Reading",
    "RangeQuery",
    "generate_readings",
    "generate_range_queries",
    "make_readings",
    "readings_schema",
    "load_readings_relation",
    "MovingObject",
    "generate_moving_objects",
    "objects_schema",
    "load_objects_relation",
    "AnnotatedToken",
    "DEFAULT_LABELS",
    "generate_annotations",
    "annotations_schema",
    "load_annotations_relation",
]
