"""Uncertain TPC-H: million-tuple scale with injected attribute uncertainty.

The paper evaluates at hundreds of thousands to millions of tuples; this
generator reproduces that scale with TPC-H-shaped relations (``lineitem``,
``orders``, ``part``) whose measure columns carry per-column pdf families:

* ``l_quantity`` — discrete samplings over small integer supports,
* ``l_extendedprice`` — a declared mix of Uniform / Triangular / Histogram
  pdfs (:data:`PRICE_FAMILY_WEIGHTS`),
* ``l_shipdate`` — Uniform / Triangular over a day-number horizon
  (:data:`SHIPDATE_FAMILY_WEIGHTS`).

A configurable fraction of lineitems carry *partial* pdfs (mass < 1): the
tuple itself may not exist.  Every dependency set is a single attribute —
the independence assumptions are explicit in the schema, never implied
(following Grohe & Lindner's argument that independence structure must be
declared, not assumed).

The data-quality scenario injects **denial-constraint violations** with a
seeded, exact count per constraint: a violator's pdf support crosses the
constraint bound (so its violation probability is strictly positive) while
every non-violator's support stays strictly inside it (violation
probability exactly zero).  Cleaning queries run through the ordinary SQL
surface:

* *rank by violation probability* — ``WHERE <violation> ORDER BY PROB(*)
  DESC``: the selection floors each pdf to the violating region without
  renormalising, so ``PROB(*)`` of a surviving tuple is exactly
  P(violation ∧ exists),
* *repair by conditioning* — ``CREATE TABLE clean AS SELECT * FROM t WHERE
  <constraint>``: the materialised rows keep only the constraint-
  satisfying mass.

All randomness flows through per-table :class:`numpy.random.Generator`
streams derived from ``TpchConfig.seed`` — no module-level global state —
so equal seeds produce bitwise-identical databases.  Row streams are
generated in fixed-size chunks of vectorised draws, so ``load_into`` can
stream scale-factor 0.5 (~3M tuples) without materialising python rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..pdf.base import Pdf
from ..pdf.continuous import TriangularPdf, UniformPdf
from ..pdf.discrete import DiscretePdf
from ..pdf.histogram import HistogramPdf

__all__ = [
    "DenialConstraint",
    "PRICE_FAMILY_WEIGHTS",
    "PRICE_LO_RANGE",
    "QUANTITY_BOUND",
    "PRICE_BOUND",
    "SHIPDATE_BOUND",
    "SHIPDATE_FAMILY_WEIGHTS",
    "TpchConfig",
    "TpchData",
    "create_tables",
    "default_constraints",
    "generate_tpch",
    "load_into",
    "query_suite",
    "synthesize",
    "table_row_counts",
]

# -- declared statistical contract -------------------------------------------

#: Denial-constraint bounds: quantity <= 50 (TPC-H Q19's cap), price and
#: shipdate stay under a cap / horizon.  Non-violators keep all support
#: strictly inside the bound.
QUANTITY_BOUND = 50.0
PRICE_BOUND = 100_000.0
SHIPDATE_BOUND = 2_500.0  # days since the epoch of the order calendar

#: pdf-family mix for l_extendedprice, declared so tests can chi-square it.
PRICE_FAMILY_WEIGHTS: Sequence[Tuple[str, float]] = (
    ("uniform", 0.4),
    ("triangular", 0.3),
    ("histogram", 0.3),
)
#: pdf-family mix for l_shipdate.
SHIPDATE_FAMILY_WEIGHTS: Sequence[Tuple[str, float]] = (
    ("uniform", 0.5),
    ("triangular", 0.5),
)

#: l_extendedprice Uniform/Triangular/Histogram supports start at
#: ``lo ~ U(PRICE_LO_RANGE)`` with width ``~ U(PRICE_WIDTH_RANGE)`` — the
#: KS sanity test checks the realised ``lo`` draws against this.
PRICE_LO_RANGE = (100.0, 50_000.0)
PRICE_WIDTH_RANGE = (10.0, 5_000.0)
#: l_shipdate supports: lo ~ U(SHIPDATE_LO_RANGE), width ~ U(WIDTH_RANGE);
#: lo + width stays under SHIPDATE_BOUND for every non-violator.
SHIPDATE_LO_RANGE = (0.0, 2_300.0)
SHIPDATE_WIDTH_RANGE = (1.0, 100.0)

_LINESTATUS = ("O", "F", "P")
_PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")

_CHUNK = 4096


@dataclass(frozen=True)
class TpchConfig:
    """Scale, seed, and injection knobs for the uncertain-TPC-H generator.

    ``scale_factor`` follows TPC-H sizing: ``lineitem`` ~ 6M x SF rows,
    ``orders`` ~ 1.5M x SF, ``part`` ~ 200k x SF (explicit ``*_rows``
    overrides win, for tiny fixed test instances).  ``partial_fraction``
    of lineitems get their quantity pdf scaled to mass < 1 (the tuple may
    not exist).  ``violations_per_constraint`` rows per denial constraint
    are re-drawn so their support crosses the constraint bound; ``None``
    scales with the table (``max(3, rows // 2000)``).
    """

    scale_factor: float = 0.01
    seed: int = 0
    lineitem_rows: Optional[int] = None
    orders_rows: Optional[int] = None
    part_rows: Optional[int] = None
    partial_fraction: float = 0.05
    violations_per_constraint: Optional[int] = None

    @property
    def n_lineitem(self) -> int:
        if self.lineitem_rows is not None:
            return self.lineitem_rows
        return max(1, int(round(6_000_000 * self.scale_factor)))

    @property
    def n_orders(self) -> int:
        if self.orders_rows is not None:
            return self.orders_rows
        return max(1, int(round(1_500_000 * self.scale_factor)))

    @property
    def n_part(self) -> int:
        if self.part_rows is not None:
            return self.part_rows
        return max(1, int(round(200_000 * self.scale_factor)))

    @property
    def n_violations(self) -> int:
        if self.violations_per_constraint is not None:
            return self.violations_per_constraint
        return min(self.n_lineitem, max(3, self.n_lineitem // 2000))


@dataclass(frozen=True)
class DenialConstraint:
    """One denial constraint over a single uncertain column: ``column <= bound``.

    ``count`` is the number of injected violators — rows whose pdf support
    crosses ``bound`` (violation probability strictly positive); every
    other row's violation probability is exactly zero.
    """

    name: str
    table: str
    column: str
    bound: float
    count: int

    @property
    def violation_predicate(self) -> str:
        """SQL predicate selecting (probabilistically) violating tuples."""
        return f"{self.column} > {self.bound:g}"

    @property
    def satisfaction_predicate(self) -> str:
        return f"{self.column} <= {self.bound:g}"

    def ranking_sql(self, columns: str = "*", limit: Optional[int] = None) -> str:
        """Rank tuples by violation probability (most suspicious first)."""
        sql = (
            f"SELECT {columns} FROM {self.table} "
            f"WHERE {self.violation_predicate} ORDER BY PROB(*) DESC"
        )
        if limit is not None:
            sql += f" LIMIT {limit}"
        return sql

    def repair_sql(self, target: str, columns: str = "*") -> str:
        """Repair by conditioning: keep only constraint-satisfying mass."""
        return (
            f"CREATE TABLE {target} AS SELECT {columns} FROM {self.table} "
            f"WHERE {self.satisfaction_predicate}"
        )


def default_constraints(config: TpchConfig) -> Tuple[DenialConstraint, ...]:
    """The three seeded denial constraints of the workload."""
    n = config.n_violations
    return (
        DenialConstraint("quantity_cap", "lineitem", "l_quantity", QUANTITY_BOUND, n),
        DenialConstraint("price_cap", "lineitem", "l_extendedprice", PRICE_BOUND, n),
        DenialConstraint(
            "shipdate_horizon", "lineitem", "l_shipdate", SHIPDATE_BOUND, n
        ),
    )


Row = Tuple[Dict[str, object], Dict[str, Optional[Pdf]]]


@dataclass
class TpchData:
    """A fully materialised instance (use streams for SF >= 0.1)."""

    config: TpchConfig
    lineitem: List[Row]
    orders: List[Row]
    part: List[Row]
    constraints: Tuple[DenialConstraint, ...]
    #: constraint name -> sorted row indices (0-based) of injected violators
    violators: Dict[str, np.ndarray] = field(default_factory=dict)


def _rng_for(config: TpchConfig, table: str) -> np.random.Generator:
    """A per-table generator stream derived from the config seed.

    Per-table streams keep each table's draws independent of the others'
    row counts, so e.g. shrinking ``part`` never reshuffles ``lineitem``.
    """
    salt = {"lineitem": 1, "orders": 2, "part": 3}[table]
    return np.random.default_rng([config.seed, salt])


def _violator_masks(
    config: TpchConfig, rng: np.random.Generator
) -> Dict[str, np.ndarray]:
    """Seeded, exact-count violator index masks, one per constraint."""
    n = config.n_lineitem
    masks: Dict[str, np.ndarray] = {}
    for constraint in default_constraints(config):
        picks = rng.choice(n, size=min(constraint.count, n), replace=False)
        mask = np.zeros(n, dtype=bool)
        mask[picks] = True
        masks[constraint.name] = mask
    return masks


def lineitem_stream(config: TpchConfig) -> Iterator[Row]:
    """Yield ``(certain, uncertain)`` lineitem rows in deterministic order."""
    rng = _rng_for(config, "lineitem")
    n = config.n_lineitem
    masks = _violator_masks(config, rng)
    q_viol, p_viol, s_viol = (
        masks["quantity_cap"],
        masks["price_cap"],
        masks["shipdate_horizon"],
    )
    price_edges = np.cumsum([w for _, w in PRICE_FAMILY_WEIGHTS])
    ship_edges = np.cumsum([w for _, w in SHIPDATE_FAMILY_WEIGHTS])

    for start in range(0, n, _CHUNK):
        m = min(_CHUNK, n - start)
        orderkey = rng.integers(1, config.n_orders + 1, size=m)
        partkey = rng.integers(1, config.n_part + 1, size=m)
        status = rng.integers(0, len(_LINESTATUS), size=m)
        # quantity: discrete over {base, base+1, base+2}, base <= 45 keeps
        # every non-violator strictly under QUANTITY_BOUND.
        qbase = rng.integers(1, 46, size=m)
        qraw = rng.random((m, 3)) + 0.05
        qraw /= qraw.sum(axis=1, keepdims=True)
        partial = rng.random(m) < config.partial_fraction
        pscale = rng.uniform(0.5, 0.95, size=m)
        # violation splits: P(cross the bound) per injected violator
        vprob = rng.uniform(0.05, 0.6, size=m)
        # extendedprice family draws
        pfam = np.searchsorted(price_edges, rng.random(m))
        plo = rng.uniform(*PRICE_LO_RANGE, size=m)
        pwidth = rng.uniform(*PRICE_WIDTH_RANGE, size=m)
        pmode = rng.random(m)
        pmasses = rng.random((m, 4)) + 0.05
        pmasses /= pmasses.sum(axis=1, keepdims=True)
        pv_lo = rng.uniform(500.0, 5_000.0, size=m)
        pv_hi = rng.uniform(500.0, 5_000.0, size=m)
        # shipdate family draws
        sfam = np.searchsorted(ship_edges, rng.random(m))
        slo = rng.uniform(*SHIPDATE_LO_RANGE, size=m)
        swidth = rng.uniform(*SHIPDATE_WIDTH_RANGE, size=m)
        smode = rng.random(m)
        sv_lo = rng.uniform(10.0, 200.0, size=m)
        sv_hi = rng.uniform(10.0, 200.0, size=m)

        for j in range(m):
            i = start + j
            scale = float(pscale[j]) if partial[j] else 1.0
            if q_viol[i]:
                pv = float(vprob[j])
                quantity: Pdf = DiscretePdf(
                    {
                        float(qbase[j]): (1.0 - pv) * scale,
                        QUANTITY_BOUND + 3.0: pv * scale,
                    },
                    attr="l_quantity",
                )
            else:
                base = float(qbase[j])
                quantity = DiscretePdf(
                    {
                        base: float(qraw[j, 0]) * scale,
                        base + 1.0: float(qraw[j, 1]) * scale,
                        base + 2.0: float(qraw[j, 2]) * scale,
                    },
                    attr="l_quantity",
                )
            if p_viol[i]:
                price: Pdf = UniformPdf(
                    PRICE_BOUND - float(pv_lo[j]),
                    PRICE_BOUND + float(pv_hi[j]),
                    attr="l_extendedprice",
                )
            else:
                lo, width = float(plo[j]), float(pwidth[j])
                fam = PRICE_FAMILY_WEIGHTS[int(pfam[j])][0]
                if fam == "uniform":
                    price = UniformPdf(lo, lo + width, attr="l_extendedprice")
                elif fam == "triangular":
                    price = TriangularPdf(
                        lo, lo + width * float(pmode[j]), lo + width,
                        attr="l_extendedprice",
                    )
                else:
                    edges = lo + width * np.array([0.0, 0.25, 0.5, 0.75, 1.0])
                    price = HistogramPdf(edges, pmasses[j], attr="l_extendedprice")
            if s_viol[i]:
                ship: Pdf = UniformPdf(
                    SHIPDATE_BOUND - float(sv_lo[j]),
                    SHIPDATE_BOUND + float(sv_hi[j]),
                    attr="l_shipdate",
                )
            else:
                lo, width = float(slo[j]), float(swidth[j])
                fam = SHIPDATE_FAMILY_WEIGHTS[int(sfam[j])][0]
                if fam == "uniform":
                    ship = UniformPdf(lo, lo + width, attr="l_shipdate")
                else:
                    ship = TriangularPdf(
                        lo, lo + width * float(smode[j]), lo + width,
                        attr="l_shipdate",
                    )
            yield (
                {
                    "l_orderkey": int(orderkey[j]),
                    "l_partkey": int(partkey[j]),
                    "l_linenumber": i + 1,
                    "l_linestatus": _LINESTATUS[int(status[j])],
                },
                {
                    "l_quantity": quantity,
                    "l_extendedprice": price,
                    "l_shipdate": ship,
                },
            )


def orders_stream(config: TpchConfig) -> Iterator[Row]:
    """Yield ``(certain, uncertain)`` orders rows (fully certain)."""
    rng = _rng_for(config, "orders")
    n = config.n_orders
    for start in range(0, n, _CHUNK):
        m = min(_CHUNK, n - start)
        custkey = rng.integers(1, max(2, n // 10), size=m)
        priority = rng.integers(0, len(_PRIORITIES), size=m)
        orderdate = np.round(rng.uniform(0.0, 2_400.0, size=m), 2)
        for j in range(m):
            yield (
                {
                    "o_orderkey": start + j + 1,
                    "o_custkey": int(custkey[j]),
                    "o_orderpriority": _PRIORITIES[int(priority[j])],
                    "o_orderdate": float(orderdate[j]),
                },
                {},
            )


def part_stream(config: TpchConfig) -> Iterator[Row]:
    """Yield ``(certain, uncertain)`` part rows (fully certain)."""
    rng = _rng_for(config, "part")
    n = config.n_part
    for start in range(0, n, _CHUNK):
        m = min(_CHUNK, n - start)
        brand = rng.integers(1, 6, size=(m, 2))
        price = np.round(rng.uniform(900.0, 2_000.0, size=m), 2)
        for j in range(m):
            yield (
                {
                    "p_partkey": start + j + 1,
                    "p_brand": f"Brand#{int(brand[j, 0])}{int(brand[j, 1])}",
                    "p_retailprice": float(price[j]),
                },
                {},
            )


_STREAMS = {
    "lineitem": lineitem_stream,
    "orders": orders_stream,
    "part": part_stream,
}

_DDL = (
    "CREATE TABLE lineitem ("
    "l_orderkey INT, l_partkey INT, l_linenumber INT, l_linestatus TEXT, "
    "l_quantity REAL UNCERTAIN, l_extendedprice REAL UNCERTAIN, "
    "l_shipdate REAL UNCERTAIN)",
    "CREATE TABLE orders ("
    "o_orderkey INT, o_custkey INT, o_orderpriority TEXT, o_orderdate REAL)",
    "CREATE TABLE part (p_partkey INT, p_brand TEXT, p_retailprice REAL)",
)


def table_row_counts(config: TpchConfig) -> Dict[str, int]:
    """Rows per table at this config (total is the workload's scale)."""
    return {
        "lineitem": config.n_lineitem,
        "orders": config.n_orders,
        "part": config.n_part,
    }


def synthesize(config: TpchConfig) -> TpchData:
    """Materialise the whole instance (tests / small SF; streams for big)."""
    rng = _rng_for(config, "lineitem")
    masks = _violator_masks(config, rng)
    return TpchData(
        config=config,
        lineitem=list(lineitem_stream(config)),
        orders=list(orders_stream(config)),
        part=list(part_stream(config)),
        constraints=default_constraints(config),
        violators={
            name: np.flatnonzero(mask) for name, mask in masks.items()
        },
    )


def create_tables(db) -> None:
    """Create the three TPC-H tables through the SQL surface."""
    for ddl in _DDL:
        db.execute(ddl)


def load_into(db, config: TpchConfig, data: Optional[TpchData] = None) -> Dict[str, int]:
    """Bulk-load an instance, streaming rows straight into the tables.

    Bypasses SQL parsing (``Table.insert`` per row — outside a transaction
    this is WAL-free, so target in-memory databases; durable loads should
    go through SQL INSERT).  Returns rows loaded per table.
    """
    counts: Dict[str, int] = {}
    for name in ("lineitem", "orders", "part"):
        table = db.catalog.tables[name]
        rows: Iterator[Row]
        if data is not None:
            rows = iter(getattr(data, name))
        else:
            rows = _STREAMS[name](config)
        loaded = 0
        for certain, uncertain in rows:
            table.insert(certain=certain, uncertain=uncertain)
            loaded += 1
        counts[name] = loaded
    return counts


def generate_tpch(db, config: TpchConfig) -> Tuple[DenialConstraint, ...]:
    """Create + stream-load the workload; returns its denial constraints."""
    create_tables(db)
    load_into(db, config)
    return default_constraints(config)


def query_suite(config: TpchConfig) -> List[Tuple[str, str]]:
    """The benchmark query suite: joins, grouping, sorts, and cleaning.

    Read-only (repair-by-conditioning CTAS is exercised separately) so a
    benchmark can replay the suite under different configs against the
    same loaded database.
    """
    quantity_cap = default_constraints(config)[0]
    return [
        (
            "join_orders",
            "SELECT l_linenumber, o_orderpriority FROM lineitem, orders "
            "WHERE lineitem.l_orderkey = orders.o_orderkey",
        ),
        (
            # COUNT over the fully-certain table hits the O(n) shortcut;
            # COUNT over lineitem's partial tuples is an O(n^2)
            # Poisson-binomial and is exercised in the goldens instead.
            "groupby_priority",
            "SELECT o_orderpriority, COUNT(*) FROM orders "
            "GROUP BY o_orderpriority",
        ),
        (
            "expected_by_status",
            "SELECT l_linestatus, EXPECTED(l_quantity) "
            "FROM lineitem GROUP BY l_linestatus",
        ),
        (
            "orderby_linenumber",
            "SELECT l_linenumber, l_orderkey FROM lineitem "
            "WHERE l_quantity > 25 ORDER BY l_orderkey DESC",
        ),
        (
            "rank_violations",
            quantity_cap.ranking_sql(columns="l_linenumber", limit=100),
        ),
    ]
