"""The paper's synthetic sensor workload (Section IV).

Quoting the experimental setup: each dataset consists of random "sensor
readings" with schema ``Readings(rid, value)``; the uncertain pdfs are
Gaussians with means distributed uniformly from 0 to 100 and standard
deviations distributed normally with mu = 2 and sigma = 0.5.  Range queries
have midpoints uniform in [0, 100] and interval lengths normal with mu = 10
and sigma = 3.

Generators are deterministic given a seed.  ``make_readings`` can emit the
three representations the experiments compare: the exact symbolic Gaussian,
a b-bucket histogram approximation, and a k-point discrete sampling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..core.model import Column, DataType, ProbabilisticRelation, ProbabilisticSchema
from ..errors import ReproError
from ..pdf.base import UnivariatePdf
from ..pdf.continuous import GaussianPdf
from ..pdf.convert import discretize, to_histogram

__all__ = [
    "Reading",
    "RangeQuery",
    "generate_readings",
    "generate_range_queries",
    "make_readings",
    "readings_schema",
    "load_readings_relation",
]

#: Lower clamp for generated standard deviations (the N(2, 0.5) draw can
#: stray near zero; the paper's setup implies strictly positive spreads).
_MIN_SIGMA = 0.25


@dataclass(frozen=True)
class Reading:
    """One sensor reading: id plus the exact Gaussian value distribution."""

    rid: int
    mean: float
    sigma: float

    @property
    def pdf(self) -> GaussianPdf:
        return GaussianPdf(self.mean, self.sigma**2)


@dataclass(frozen=True)
class RangeQuery:
    """One range query [lo, hi]."""

    lo: float
    hi: float

    @property
    def midpoint(self) -> float:
        return (self.lo + self.hi) / 2.0

    @property
    def length(self) -> float:
        return self.hi - self.lo


def generate_readings(
    n: int, seed: int = 0, rng: Optional[np.random.Generator] = None
) -> List[Reading]:
    """``n`` sensor readings per the paper's distribution of parameters.

    All randomness flows through one explicit generator: pass ``rng`` to
    share a stream across generators, otherwise one is derived from
    ``seed``.  Equal seeds give bitwise-identical outputs.
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    means = rng.uniform(0.0, 100.0, size=n)
    sigmas = np.maximum(rng.normal(2.0, 0.5, size=n), _MIN_SIGMA)
    return [Reading(i + 1, float(m), float(s)) for i, (m, s) in enumerate(zip(means, sigmas))]


def generate_range_queries(
    n: int, seed: int = 1, rng: Optional[np.random.Generator] = None
) -> List[RangeQuery]:
    """``n`` range queries per the paper's distribution of parameters."""
    if rng is None:
        rng = np.random.default_rng(seed)
    midpoints = rng.uniform(0.0, 100.0, size=n)
    lengths = np.maximum(rng.normal(10.0, 3.0, size=n), 0.5)
    return [
        RangeQuery(float(m - l / 2.0), float(m + l / 2.0))
        for m, l in zip(midpoints, lengths)
    ]


def make_readings(
    readings: List[Reading], representation: str = "symbolic", size: int = 5
) -> Iterator[Tuple[int, UnivariatePdf]]:
    """Yield (rid, pdf) pairs under the chosen representation.

    ``representation``:

    * ``"symbolic"`` — the exact Gaussian (constant storage, exact answers),
    * ``"histogram"`` — ``size`` equal-width buckets (the paper fixes 5),
    * ``"discrete"`` — ``size`` sampling points (the paper fixes 25 for an
      accuracy comparable to the 5-bucket histogram).
    """
    for r in readings:
        exact = r.pdf
        if representation == "symbolic":
            yield r.rid, exact
        elif representation == "histogram":
            yield r.rid, to_histogram(exact, size)
        elif representation == "discrete":
            yield r.rid, discretize(exact, size)
        else:
            raise ReproError(f"unknown representation {representation!r}")


def readings_schema() -> ProbabilisticSchema:
    """The paper's ``Readings(rid, value)`` schema with uncertain value."""
    return ProbabilisticSchema(
        [Column("rid", DataType.INT), Column("value", DataType.REAL)],
        [{"value"}],
    )


def load_readings_relation(
    readings: List[Reading],
    representation: str = "symbolic",
    size: int = 5,
    name: str = "readings",
) -> ProbabilisticRelation:
    """Materialise readings as an in-memory probabilistic relation."""
    rel = ProbabilisticRelation(readings_schema(), name=name)
    for rid, pdf in make_readings(readings, representation, size):
        rel.insert(certain={"rid": rid}, uncertain={"value": pdf})
    return rel
