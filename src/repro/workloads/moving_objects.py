"""Moving-object workload: correlated 2-D location uncertainty.

Section II-A motivates joint dependency sets with location tracking: the
uncertainty between the x- and y-coordinates of a moving object is
correlated, so the model stores one joint pdf over ``(x, y)`` rather than
two independent marginals.  This generator produces objects with jointly
Gaussian positions whose correlation follows the direction of motion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.model import Column, DataType, ProbabilisticRelation, ProbabilisticSchema
from ..pdf.joint import JointGaussianPdf

__all__ = ["MovingObject", "generate_moving_objects", "objects_schema", "load_objects_relation"]


@dataclass(frozen=True)
class MovingObject:
    """One tracked object: id and a correlated 2-D Gaussian position."""

    oid: int
    mean_x: float
    mean_y: float
    var_x: float
    var_y: float
    correlation: float

    @property
    def pdf(self) -> JointGaussianPdf:
        cov_xy = self.correlation * np.sqrt(self.var_x * self.var_y)
        return JointGaussianPdf(
            ("x", "y"),
            [self.mean_x, self.mean_y],
            [[self.var_x, cov_xy], [cov_xy, self.var_y]],
        )


def generate_moving_objects(
    n: int,
    seed: int = 0,
    area: float = 100.0,
    rng: Optional[np.random.Generator] = None,
) -> List[MovingObject]:
    """``n`` objects uniformly placed in [0, area]^2.

    Position variances are drawn from [0.5, 4.0]; the x/y correlation from
    [-0.8, 0.8], mimicking heading-aligned GPS error ellipses.  Pass ``rng``
    to share one explicit random stream across generators; otherwise one is
    derived from ``seed``.
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    out = []
    for i in range(n):
        out.append(
            MovingObject(
                oid=i + 1,
                mean_x=float(rng.uniform(0.0, area)),
                mean_y=float(rng.uniform(0.0, area)),
                var_x=float(rng.uniform(0.5, 4.0)),
                var_y=float(rng.uniform(0.5, 4.0)),
                correlation=float(rng.uniform(-0.8, 0.8)),
            )
        )
    return out


def objects_schema() -> ProbabilisticSchema:
    """``Objects(oid, x, y)`` with (x, y) jointly distributed."""
    return ProbabilisticSchema(
        [Column("oid", DataType.INT), Column("x", DataType.REAL), Column("y", DataType.REAL)],
        [{"x", "y"}],
    )


def load_objects_relation(
    objects: List[MovingObject], name: str = "objects"
) -> ProbabilisticRelation:
    """Materialise moving objects as an in-memory probabilistic relation."""
    rel = ProbabilisticRelation(objects_schema(), name=name)
    for obj in objects:
        rel.insert(certain={"oid": obj.oid}, uncertain={("x", "y"): obj.pdf})
    return rel
