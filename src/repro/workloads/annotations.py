"""Text-annotation workload: categorical (discrete) uncertainty.

The introduction motivates the model with text annotation — "annotations
are rarely perfect".  This generator produces annotated tokens where each
annotation is a categorical distribution over entity labels, with a
configurable probability that the annotator's top choice is uncertain.
Partial masses model tokens that may carry no entity at all (tuple
uncertainty via partial pdfs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.model import Column, DataType, ProbabilisticRelation, ProbabilisticSchema
from ..pdf.discrete import CategoricalPdf

__all__ = [
    "AnnotatedToken",
    "DEFAULT_LABELS",
    "generate_annotations",
    "annotations_schema",
    "load_annotations_relation",
]

DEFAULT_LABELS: Sequence[str] = ("person", "place", "organization", "date", "other")


@dataclass(frozen=True)
class AnnotatedToken:
    """One token: document position plus a categorical label distribution."""

    token_id: int
    doc_id: int
    label_probs: Dict[str, float]

    @property
    def pdf(self) -> CategoricalPdf:
        return CategoricalPdf(self.label_probs)

    @property
    def exists_prob(self) -> float:
        return sum(self.label_probs.values())


def generate_annotations(
    n: int,
    seed: int = 0,
    labels: Sequence[str] = DEFAULT_LABELS,
    ambiguous_fraction: float = 0.4,
    missing_fraction: float = 0.1,
    rng: Optional[np.random.Generator] = None,
) -> List[AnnotatedToken]:
    """``n`` annotated tokens.

    ``ambiguous_fraction`` of the tokens spread probability over two or
    three labels; ``missing_fraction`` carry a partial pdf (the annotator
    believes the token may not be an entity at all).  Pass ``rng`` to share
    one explicit random stream across generators; otherwise one is derived
    from ``seed``.
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    out = []
    for i in range(n):
        doc_id = int(rng.integers(1, max(n // 20, 2)))
        chosen = rng.permutation(len(labels))
        if rng.random() < ambiguous_fraction:
            k = int(rng.integers(2, 4))
            raw = rng.dirichlet(np.ones(k) * 2.0)
        else:
            k = 1
            raw = np.array([1.0])
        scale = 1.0
        if rng.random() < missing_fraction:
            scale = float(rng.uniform(0.5, 0.95))
        probs = {
            labels[chosen[j]]: float(raw[j] * scale) for j in range(k) if raw[j] * scale > 0
        }
        out.append(AnnotatedToken(i + 1, doc_id, probs))
    return out


def annotations_schema() -> ProbabilisticSchema:
    """``Annotations(token_id, doc_id, label)`` with uncertain label."""
    return ProbabilisticSchema(
        [
            Column("token_id", DataType.INT),
            Column("doc_id", DataType.INT),
            Column("label", DataType.TEXT),
        ],
        [{"label"}],
    )


def load_annotations_relation(
    tokens: List[AnnotatedToken], name: str = "annotations"
) -> ProbabilisticRelation:
    """Materialise annotated tokens as an in-memory probabilistic relation."""
    rel = ProbabilisticRelation(annotations_schema(), name=name)
    for token in tokens:
        rel.insert(
            certain={"token_id": token.token_id, "doc_id": token.doc_id},
            uncertain={"label": token.pdf},
        )
    return rel
