"""Morsel-driven parallel executor: worker-count sweep.

Two workloads, each swept over ``workers in (1, 2, 4, 8)`` and both pool
backends:

* ``gaussian_range_selection`` — the micro-engine workload (BENCH_engine)
  run through a stored table, so the scan splits into page-grain morsels.
* ``hash_join_heavy`` — an equi-join between a sensors table and a rooms
  table with a probabilistic range term, exercising the partitioned
  parallel build+probe.

Writes ``BENCH_parallel.json`` at the repo root.  Result sets must be
identical across all worker counts and backends (values and pdfs; join
tuple ids are renumbered at the gather and are excluded).  The >= 2x
speedup bar at 4 workers only applies on machines with >= 4 CPUs — the
report records ``cpus`` so single-core CI numbers are read honestly.

Run: ``pytest benchmarks/bench_parallel.py --benchmark-only -q``
Reduced smoke (CI): ``REPRO_BENCH_PARALLEL_N=400 pytest benchmarks/bench_parallel.py --benchmark-only -q``
"""

import json
import os
import random
import time
from pathlib import Path

import pytest

from repro.bench.envinfo import environment_info
from repro.core.model import ModelConfig
from repro.core.operations import PDF_OP_CACHE
from repro.engine.database import Database

N = int(os.environ.get("REPRO_BENCH_PARALLEL_N", "3000"))
WORKER_COUNTS = (1, 2, 4, 8)
BACKENDS = ("thread", "process")


def _build_db() -> Database:
    rng = random.Random(13)
    db = Database(config=ModelConfig())
    db.execute("CREATE TABLE sensors (sid INT, temp REAL UNCERTAIN)")
    db.execute("CREATE TABLE rooms (sid INT, room INT)")
    for i in range(N):
        mu = rng.uniform(10, 30)
        sd = rng.uniform(0.5, 4.0)
        db.execute(f"INSERT INTO sensors VALUES ({i}, GAUSSIAN({mu:.6f}, {sd:.6f}))")
    for i in range(N):
        db.execute(f"INSERT INTO rooms VALUES ({i}, {i % 23})")
    return db


SCAN_SQL = "SELECT sid, temp FROM sensors WHERE temp > 18 AND temp < 24"
JOIN_SQL = (
    "SELECT s.sid, r.room FROM sensors s, rooms r "
    "WHERE s.sid = r.sid AND s.temp > 20"
)


def _result_key(result, with_ids):
    out = []
    for t in result.rows:
        pdfs = tuple(
            sorted((tuple(sorted(dep)), repr(pdf)) for dep, pdf in t.pdfs.items())
        )
        out.append(
            (
                t.tuple_id if with_ids else None,
                tuple(sorted(t.certain.items())),
                pdfs,
            )
        )
    return out


def _timed_query(db, sql, repeats=3):
    """Best-of wall time with a cold pdf-op cache per run."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        PDF_OP_CACHE.reset()
        t0 = time.perf_counter()
        result = db.execute(sql)
        best = min(best, time.perf_counter() - t0)
    return best, result


def bench_parallel_worker_sweep(benchmark, capsys):
    """Worker sweep over scan and join workloads; writes BENCH_parallel.json."""
    db = _build_db()
    cpus = os.cpu_count() or 1

    def run():
        workloads = []
        for name, sql, ids_stable in (
            ("gaussian_range_selection", SCAN_SQL, True),
            # Join output ids are renumbered at the gather (serial draws an
            # id per candidate pair), so identity is checked without ids.
            ("hash_join_heavy", JOIN_SQL, False),
        ):
            db.catalog.config = ModelConfig()
            serial_t, serial_res = _timed_query(db, sql)
            serial_key = _result_key(serial_res, ids_stable)
            entries = []
            for backend in BACKENDS:
                for workers in WORKER_COUNTS:
                    if workers == 1 and backend != "thread":
                        continue  # workers=1 never launches a pool
                    db.catalog.config = ModelConfig(
                        workers=workers, parallel_backend=backend
                    )
                    t, res = _timed_query(db, sql)
                    # Scan chains preserve ids exactly at every worker count.
                    assert _result_key(res, ids_stable) == serial_key, (
                        name,
                        backend,
                        workers,
                    )
                    stats = res.parallel_stats
                    entries.append(
                        {
                            "workers": workers,
                            "backend": backend,
                            "seconds": t,
                            "speedup": serial_t / t,
                            "morsels": stats["morsels"] if stats else 0,
                            "per_worker": {
                                w: {
                                    "morsels": row["morsels"],
                                    "busy_seconds": row["elapsed"],
                                }
                                for w, row in (
                                    stats["per_worker"] if stats else {}
                                ).items()
                            },
                        }
                    )
            workloads.append(
                {
                    "workload": name,
                    "result_rows": len(serial_res.rows),
                    "serial_seconds": serial_t,
                    "entries": entries,
                }
            )
        db.catalog.config = ModelConfig()
        return {
            "tuples": N,
            "cpus": cpus,
            "workloads": workloads,
            "environment": environment_info(),
        }

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    out_path = Path(__file__).resolve().parents[1] / "BENCH_parallel.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    with capsys.disabled():
        print()
        from repro.bench.reporting import print_figure

        for w in report["workloads"]:
            print_figure(
                f"Parallel sweep: {w['workload']} (serial "
                f"{w['serial_seconds'] * 1000:.2f} ms, {cpus} cpus)",
                ["workers", "backend", "seconds", "speedup", "morsels"],
                [
                    [e["workers"], e["backend"], e["seconds"], e["speedup"], e["morsels"]]
                    for e in w["entries"]
                ],
            )
            print()
        print(f"wrote {out_path}")

    # The scalability bar only means something with real cores to scale on;
    # single-core runners still verified result identity above.
    if cpus >= 4:
        for w in report["workloads"]:
            best_at_4 = max(
                e["speedup"]
                for e in w["entries"]
                if e["workers"] == 4
            )
            assert best_at_4 >= 2.0, (
                f"{w['workload']}: best 4-worker speedup {best_at_4:.2f}x "
                "below the 2x bar"
            )
