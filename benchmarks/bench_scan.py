"""Pruned + lazily decoded scans: selectivity sweep.

One clustered table of Gaussian readings (means increase with the row id,
so heap pages are value-clustered the way a timeseries or sensor log is),
swept over four range selectivities × four config cells:

* ``baseline`` — scan_pruning=False, lazy_decode=False (the PR 3 scan
  path: every page visited, every pdf payload decoded),
* ``prune``    — page synopses skip non-overlapping pages,
* ``lazy``     — all pages visited, pdfs decoded only for survivors,
* ``both``     — pruning + lazy decoding (the default configuration).

Result sets must be identical to the baseline in every cell (tuple ids,
certain values and pdfs — scans and filters preserve ids).  Writes
``BENCH_scan.json`` at the repo root; the acceptance bar is a >= 3x
speedup for ``both`` at the 1% selectivity point (full-size runs only).

Run: ``pytest benchmarks/bench_scan.py --benchmark-only -q``
Reduced smoke (CI): ``REPRO_BENCH_SCAN_N=400 pytest benchmarks/bench_scan.py --benchmark-only -q``
"""

import json
import os
import re
import time
from pathlib import Path

from repro.bench.envinfo import environment_info
from repro.core.model import ModelConfig
from repro.core.operations import PDF_OP_CACHE
from repro.engine.database import Database
from repro.pdf import GaussianPdf

N = int(os.environ.get("REPRO_BENCH_SCAN_N", "4000"))
SPREAD = 1000.0  # value range of the clustered means
SELECTIVITIES = (0.01, 0.1, 0.5, 1.0)

CONFIGS = {
    "baseline": dict(scan_pruning=False, lazy_decode=False),
    "prune": dict(scan_pruning=True, lazy_decode=False),
    "lazy": dict(scan_pruning=False, lazy_decode=True),
    "both": dict(scan_pruning=True, lazy_decode=True),
}


def _build_db() -> Database:
    db = Database(config=ModelConfig())
    db.execute("CREATE TABLE readings (rid INT, value REAL UNCERTAIN)")
    table = db.table("readings")
    for i in range(N):
        mu = (i / N) * SPREAD
        table.insert(
            certain={"rid": i},
            uncertain={"value": GaussianPdf(mu, 0.8, attr="value")},
        )
    return db


def _query(frac: float) -> str:
    hi = frac * SPREAD
    return f"SELECT rid, value FROM readings WHERE value > 0 AND value < {hi:.4f}"


def _result_key(result):
    return [
        (
            t.tuple_id,
            tuple(sorted(t.certain.items())),
            tuple(sorted((tuple(sorted(d)), repr(p)) for d, p in t.pdfs.items())),
        )
        for t in result.rows
    ]


def _timed_query(db, sql, repeats=3):
    """Best-of wall time with a cold pdf-op cache per run."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        PDF_OP_CACHE.reset()
        t0 = time.perf_counter()
        result = db.execute(sql)
        best = min(best, time.perf_counter() - t0)
    return best, result


def _pages_visited(db, sql):
    """(visited, total) from the pruned scan's EXPLAIN ANALYZE annotation."""
    text = db.execute("EXPLAIN ANALYZE " + sql).plan_text
    match = re.search(r"pages=(\d+)/(\d+)", text)
    return (int(match.group(1)), int(match.group(2))) if match else None


def bench_scan_pruning_sweep(benchmark, capsys):
    """Selectivity × config sweep; writes BENCH_scan.json."""
    db = _build_db()

    def run():
        points = []
        for frac in SELECTIVITIES:
            sql = _query(frac)
            db.catalog.config = ModelConfig(**CONFIGS["baseline"])
            base_t, base_res = _timed_query(db, sql)
            base_key = _result_key(base_res)
            cells = {}
            for name, flags in CONFIGS.items():
                db.catalog.config = ModelConfig(**flags)
                t, res = _timed_query(db, sql)
                # Identity in every cell: pruning must never change answers.
                assert _result_key(res) == base_key, (name, frac)
                cells[name] = {"seconds": t, "speedup": base_t / t}
            db.catalog.config = ModelConfig(**CONFIGS["both"])
            pages = _pages_visited(db, sql)
            points.append(
                {
                    "selectivity": frac,
                    "result_rows": len(base_res.rows),
                    "pages": {"visited": pages[0], "total": pages[1]}
                    if pages
                    else None,
                    "cells": cells,
                }
            )
        db.catalog.config = ModelConfig()
        return {
            "tuples": N,
            "spread": SPREAD,
            "points": points,
            "environment": environment_info(),
        }

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    out_path = Path(__file__).resolve().parents[1] / "BENCH_scan.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    with capsys.disabled():
        print()
        from repro.bench.reporting import print_figure

        rows = []
        for p in report["points"]:
            pages = p["pages"]
            rows.append(
                [
                    p["selectivity"],
                    p["result_rows"],
                    f"{pages['visited']}/{pages['total']}" if pages else "-",
                ]
                + [f"{p['cells'][c]['speedup']:.2f}x" for c in CONFIGS]
            )
        print_figure(
            f"Scan pruning sweep ({N} tuples)",
            ["selectivity", "rows", "pages"] + list(CONFIGS),
            rows,
        )
        print(f"wrote {out_path}")

    # The speedup bar needs enough data for page pruning to matter; reduced
    # CI smoke runs still verified result identity above.
    if N >= 2000:
        point = next(p for p in report["points"] if p["selectivity"] == 0.01)
        speedup = point["cells"]["both"]["speedup"]
        assert speedup >= 3.0, (
            f"pruning+lazy speedup {speedup:.2f}x at 1% selectivity "
            "is below the 3x bar"
        )
