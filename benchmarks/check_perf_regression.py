"""Perf-regression guard over the committed ``BENCH_engine.json``.

Compares the batch-256 columnar speedup of the current report against the
value committed at a baseline git ref (default ``HEAD``), with a slack
factor absorbing machine noise.  Run it after regenerating the report and
before committing::

    python benchmarks/check_perf_regression.py --baseline-ref HEAD

In CI the baseline is the parent commit (``--baseline-ref HEAD~1``) so a
pull request that slows the columnar path fails loudly.  The guard is
deliberately tolerant of history it cannot see: a missing ref, a missing
baseline file, or a baseline measured at a different ``tuples`` count only
prints a note — the absolute ``--min-speedup`` floor still applies.

Baselines written before the columnar path existed lack the ``columnar``
variant field; the guard falls back to the plain batch-256 speedup of that
era so the comparison stays meaningful across the schema change.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def batch256_speedup(report: dict) -> float:
    """The batch-256 speedup, preferring the columnar variant when present."""
    variants = [v for v in report.get("variants", []) if v.get("batch_size") == 256]
    if not variants:
        raise SystemExit("perf guard: no batch-256 variant in report")
    columnar = [v for v in variants if v.get("columnar")]
    chosen = columnar[0] if columnar else variants[0]
    return float(chosen["speedup"])


def load_baseline(ref: str, name: str) -> dict | None:
    try:
        blob = subprocess.run(
            ["git", "show", f"{ref}:{name}"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    except (subprocess.CalledProcessError, FileNotFoundError):
        return None
    try:
        return json.loads(blob)
    except json.JSONDecodeError:
        return None


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--report", default="BENCH_engine.json", help="current report path, relative to the repo root")
    ap.add_argument("--baseline-ref", default="HEAD", help="git ref holding the previous committed report")
    ap.add_argument("--slack", type=float, default=0.75, help="tolerated fraction of the baseline speedup")
    ap.add_argument("--min-speedup", type=float, default=None, help="absolute floor on the batch-256 speedup")
    args = ap.parse_args(argv)

    report_path = REPO_ROOT / args.report
    if not report_path.exists():
        print(f"perf guard: {args.report} not found", file=sys.stderr)
        return 1
    report = json.loads(report_path.read_text())
    current = batch256_speedup(report)
    print(f"perf guard: current batch-256 speedup {current:.2f}x (tuples={report.get('tuples')})")

    if args.min_speedup is not None and current < args.min_speedup:
        print(
            f"perf guard: FAIL — {current:.2f}x below the absolute floor "
            f"{args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1

    baseline = load_baseline(args.baseline_ref, args.report)
    if baseline is None:
        print(f"perf guard: no baseline at {args.baseline_ref}:{args.report}; skipping comparison")
        return 0
    if baseline.get("tuples") != report.get("tuples"):
        print(
            "perf guard: baseline measured at tuples="
            f"{baseline.get('tuples')}, report at tuples={report.get('tuples')}; "
            "skipping comparison (speedups are not comparable across N)"
        )
        return 0

    previous = batch256_speedup(baseline)
    floor = args.slack * previous
    print(
        f"perf guard: baseline {previous:.2f}x at {args.baseline_ref}, "
        f"floor {floor:.2f}x (slack {args.slack})"
    )
    if current < floor:
        print(
            f"perf guard: FAIL — batch-256 speedup regressed {previous:.2f}x -> {current:.2f}x",
            file=sys.stderr,
        )
        return 1
    print("perf guard: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
