"""Perf-regression guard over the committed benchmark reports.

Compares the batch-256 columnar speedup of each current report
(``BENCH_engine.json``, ``BENCH_join.json``, and ``BENCH_tpch.json`` by
default) against the value committed at a baseline git ref (default
``HEAD``), with a slack factor absorbing machine noise.  The TPC-H report
carries no batch-256 variants; it is dispatched to its own checks —
bitwise spilled/in-memory identity per cell, mandatory spills at large
scale factors, and a ceiling on spill overhead versus the baseline.  Run
the guard after regenerating the reports and before committing::

    python benchmarks/check_perf_regression.py --baseline-ref HEAD

In CI the baseline is the parent commit (``--baseline-ref HEAD~1``) so a
pull request that slows the columnar path fails loudly.  The guard is
deliberately tolerant of history it cannot see: a missing ref, a missing
baseline file, or a baseline measured at a different ``tuples`` count only
prints a note — the absolute ``--min-speedup`` floor still applies.

Baselines written before the columnar path existed lack the ``columnar``
variant field; the guard falls back to the plain batch-256 speedup of that
era so the comparison stays meaningful across the schema change.

``--report`` may be repeated to guard a custom set of reports; every named
report must exist and pass for the guard to exit 0.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

DEFAULT_REPORTS = ["BENCH_engine.json", "BENCH_join.json", "BENCH_tpch.json"]

#: lineitem row count above which the TPC-H sweep must have observed spills.
TPCH_SPILL_EXPECTED_ROWS = 150_000


def batch256_speedup(report: dict) -> float:
    """The batch-256 speedup, preferring the columnar variant when present."""
    variants = [v for v in report.get("variants", []) if v.get("batch_size") == 256]
    if not variants:
        raise SystemExit("perf guard: no batch-256 variant in report")
    columnar = [v for v in variants if v.get("columnar")]
    chosen = columnar[0] if columnar else variants[0]
    return float(chosen["speedup"])


def tpch_overhead(report: dict) -> dict[tuple[float, str], float]:
    """Per-(scale factor, query) spilled/in-memory slowdown ratios."""
    ratios: dict[tuple[float, str], float] = {}
    for sweep in report.get("sweeps", []):
        for cell in sweep.get("queries", []):
            mem = float(cell["in_memory_seconds"])
            if mem > 0:
                ratios[(sweep["scale_factor"], cell["query"])] = (
                    float(cell["spilled_seconds"]) / mem
                )
    return ratios


def check_tpch_report(name: str, report: dict, baseline: dict | None, slack: float) -> int:
    """The TPC-H report has no batch-256 variants; it is guarded on its own
    invariants: every cell's spilled result must have matched the in-memory
    one bitwise, sweeps large enough to exceed ``work_mem`` must actually
    have spilled, and the spilled/in-memory overhead ratio must not blow up
    versus the committed baseline (lower is better, so the ceiling is
    ``previous / slack``)."""
    status = 0
    for sweep in report.get("sweeps", []):
        sf = sweep["scale_factor"]
        for cell in sweep.get("queries", []):
            if not cell.get("identical"):
                print(
                    f"perf guard [{name}]: FAIL — sf={sf} query="
                    f"{cell['query']!r} spilled result was not identical",
                    file=sys.stderr,
                )
                status = 1
        spills = sweep.get("spills_observed", {})
        if sweep.get("table_rows", {}).get("lineitem", 0) >= TPCH_SPILL_EXPECTED_ROWS:
            if spills.get("join_spills", 0) < 1 or spills.get("sort_spills", 0) < 1:
                print(
                    f"perf guard [{name}]: FAIL — sf={sf} ran above work_mem "
                    f"but observed no join+sort spills ({spills})",
                    file=sys.stderr,
                )
                status = 1
    largest = max(report.get("scale_factors", [0.0]))
    print(
        f"perf guard [{name}]: sweep up to SF {largest:g}, "
        f"{sum(len(s.get('queries', [])) for s in report.get('sweeps', []))} "
        "cells, all spilled results identical" if status == 0 else
        f"perf guard [{name}]: structural checks failed"
    )
    if status:
        return status

    if baseline is None:
        print(f"perf guard [{name}]: no baseline; skipping overhead comparison")
        return 0
    if baseline.get("scale_factors") != report.get("scale_factors"):
        print(
            f"perf guard [{name}]: baseline swept {baseline.get('scale_factors')}, "
            f"report swept {report.get('scale_factors')}; skipping comparison"
        )
        return 0
    current, previous = tpch_overhead(report), tpch_overhead(baseline)
    for key in sorted(current.keys() & previous.keys()):
        ceiling = previous[key] / slack
        if current[key] > ceiling:
            print(
                f"perf guard [{name}]: FAIL — spill overhead at sf={key[0]} "
                f"{key[1]!r} regressed {previous[key]:.2f}x -> {current[key]:.2f}x "
                f"(ceiling {ceiling:.2f}x)",
                file=sys.stderr,
            )
            status = 1
    if status == 0:
        print(f"perf guard [{name}]: OK")
    return status


def load_baseline(ref: str, name: str) -> dict | None:
    try:
        blob = subprocess.run(
            ["git", "show", f"{ref}:{name}"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    except (subprocess.CalledProcessError, FileNotFoundError):
        return None
    try:
        return json.loads(blob)
    except json.JSONDecodeError:
        return None


def check_report(
    name: str,
    baseline_ref: str,
    slack: float,
    min_speedup: float | None,
) -> int:
    report_path = REPO_ROOT / name
    if not report_path.exists():
        print(f"perf guard: {name} not found", file=sys.stderr)
        return 1
    report = json.loads(report_path.read_text())
    if report.get("workload") == "tpch_uncertain":
        return check_tpch_report(name, report, load_baseline(baseline_ref, name), slack)
    current = batch256_speedup(report)
    print(
        f"perf guard [{name}]: current batch-256 speedup {current:.2f}x "
        f"(tuples={report.get('tuples')})"
    )

    if min_speedup is not None and current < min_speedup:
        print(
            f"perf guard [{name}]: FAIL — {current:.2f}x below the absolute "
            f"floor {min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1

    baseline = load_baseline(baseline_ref, name)
    if baseline is None:
        print(
            f"perf guard [{name}]: no baseline at {baseline_ref}:{name}; "
            "skipping comparison"
        )
        return 0
    if baseline.get("tuples") != report.get("tuples"):
        print(
            f"perf guard [{name}]: baseline measured at tuples="
            f"{baseline.get('tuples')}, report at tuples={report.get('tuples')}; "
            "skipping comparison (speedups are not comparable across N)"
        )
        return 0

    previous = batch256_speedup(baseline)
    floor = slack * previous
    print(
        f"perf guard [{name}]: baseline {previous:.2f}x at {baseline_ref}, "
        f"floor {floor:.2f}x (slack {slack})"
    )
    if current < floor:
        print(
            f"perf guard [{name}]: FAIL — batch-256 speedup regressed "
            f"{previous:.2f}x -> {current:.2f}x",
            file=sys.stderr,
        )
        return 1
    print(f"perf guard [{name}]: OK")
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--report",
        action="append",
        default=None,
        help="report path relative to the repo root (repeatable; defaults to "
        + " and ".join(DEFAULT_REPORTS) + ")",
    )
    ap.add_argument("--baseline-ref", default="HEAD", help="git ref holding the previous committed report")
    ap.add_argument("--slack", type=float, default=0.75, help="tolerated fraction of the baseline speedup")
    ap.add_argument("--min-speedup", type=float, default=None, help="absolute floor on the batch-256 speedup")
    args = ap.parse_args(argv)

    reports = args.report if args.report else DEFAULT_REPORTS
    status = 0
    for name in reports:
        status |= check_report(name, args.baseline_ref, args.slack, args.min_speedup)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
