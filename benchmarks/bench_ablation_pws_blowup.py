"""Ablation A5 — why nobody evaluates queries by enumerating worlds.

Figure 1 of the paper defines semantics by expanding the database into all
possible worlds; Section I immediately notes that "the number of possible
worlds can be very large (even infinite for continuous uncertainty)" and
that a practical model must avoid the enumeration.  This ablation puts
numbers on that: the brute-force evaluator's cost doubles with every tuple
while the model's operators scale linearly — on *identical* answers.

Run: ``pytest benchmarks/bench_ablation_pws_blowup.py --benchmark-only -q``
"""

import time

import pytest

from repro.bench.reporting import print_figure
from repro.core import (
    Column,
    Comparison,
    DataType,
    ProbabilisticRelation,
    ProbabilisticSchema,
    col,
    expected_multiplicities,
    model_multiplicities,
    multiplicities_match,
    select,
    world_select,
)
from repro.pdf import DiscretePdf

PRED = Comparison("a", "<", col("b"))


def _relation(n: int) -> ProbabilisticRelation:
    schema = ProbabilisticSchema(
        [Column("a", DataType.INT), Column("b", DataType.INT)], [{"a"}, {"b"}]
    )
    rel = ProbabilisticRelation(schema)
    for i in range(n):
        rel.insert(
            uncertain={
                "a": DiscretePdf({i: 0.5, i + 1: 0.5}),
                "b": DiscretePdf({i: 0.5, i + 2: 0.5}),
            }
        )
    return rel


def bench_model_select_n10(benchmark):
    rel = _relation(10)
    benchmark(lambda: select(rel, PRED))


def bench_pws_select_n8(benchmark):
    rel = _relation(8)
    benchmark.pedantic(
        lambda: expected_multiplicities({"T": rel}, lambda w: world_select(w["T"], PRED)),
        rounds=2,
        iterations=1,
    )


def bench_ablation_a5_report(benchmark, capsys):
    def run():
        rows = []
        for n in (2, 4, 6, 8):
            rel = _relation(n)
            worlds = 4**n  # two binary events per tuple
            t0 = time.perf_counter()
            model = model_multiplicities(select(rel, PRED))
            model_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            pws = expected_multiplicities(
                {"T": rel}, lambda w: world_select(w["T"], PRED)
            )
            pws_s = time.perf_counter() - t0
            assert multiplicities_match(model, pws)
            rows.append([n, worlds, model_s, pws_s])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print_figure(
            "Ablation A5: model operators vs brute-force world enumeration",
            ["tuples", "worlds", "model_s", "enumeration_s"],
            rows,
        )
    # Model time grows roughly linearly; enumeration explodes with 4^n.
    model_growth = rows[-1][2] / max(rows[0][2], 1e-9)
    pws_growth = rows[-1][3] / max(rows[0][3], 1e-9)
    assert pws_growth > 10 * model_growth
