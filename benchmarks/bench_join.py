"""Join/aggregate hot-path benchmark: columnar hash join + vectorized GROUP BY.

Joins an uncertain readings relation against a certain sites dimension and
aggregates per region (COUNT + EXPECTED), sweeping batch size and the
columnar flag exactly like ``bench_micro_engine.py``'s selection sweep.
Writes ``BENCH_join.json`` at the repo root; the top-level ``variants``
carry the headline join+GROUP BY pipeline cells (so
``check_perf_regression.py`` guards them unchanged), with the pure-join
sweep nested under ``join_only``.

For every cell the result stream must be identical to the tuple-at-a-time
reference — tuple ids included: the history store's id counter is reset to
the same snapshot before every run, so both paths draw the same id
sequence and the comparison is exact, not modulo renumbering.

Run: ``pytest benchmarks/bench_join.py --benchmark-only -q``
"""

import json
import os
import random
import time
from pathlib import Path

from repro.bench.envinfo import environment_info
from repro.bench.protocol import pdf_cache_stats
from repro.core import Column, DataType, ProbabilisticRelation, ProbabilisticSchema
from repro.core.history import HistoryStore
from repro.core.model import ModelConfig
from repro.core.operations import PDF_OP_CACHE
from repro.core.predicates import And, Comparison, col
from repro.engine.executor import (
    AggSpec,
    GroupAggregate,
    HashJoin,
    ProbFilter,
    RelationScan,
)
from repro.pdf import GaussianPdf

SWEEP_N = int(os.environ.get("REPRO_BENCH_JOIN_N", "4000"))
N_SITES = 64
N_REGIONS = 8
BATCH_SIZES = (1, 32, 256, 1024)

#: pipeline speedup bar at batch >= 256, relaxed at reduced N (CI smoke)
#: where fixed per-query overheads dominate.
PIPELINE_BAR = 10.0 if SWEEP_N >= 4000 else 2.0
#: The pure join is pair-construction bound in both paths (every output
#: tuple must be merged and emitted whichever way the probe ran), so the
#: vectorized probe buys parity there, not a multiple — its payoff shows
#: in the pipeline, where probing composes with the fused filter and
#: aggregate kernels.  Guard against regression, don't demand a speedup.
JOIN_PARITY_BAR = 0.8 if SWEEP_N >= 4000 else 0.5


def _build():
    store = HistoryStore()
    rng = random.Random(11)
    readings_schema = ProbabilisticSchema(
        [
            Column("rid", DataType.INT),
            Column("site", DataType.INT),
            Column("temp", DataType.REAL),
        ],
        [{"temp"}],
    )
    readings = ProbabilisticRelation(readings_schema, store=store, name="readings")
    for i in range(SWEEP_N):
        readings.insert(
            certain={"rid": i, "site": i % N_SITES},
            uncertain={
                "temp": GaussianPdf(
                    rng.uniform(10, 30), rng.uniform(0.5, 4.0), attr="temp"
                )
            },
        )
    sites_schema = ProbabilisticSchema(
        [Column("site_id", DataType.INT), Column("region", DataType.INT)]
    )
    sites = ProbabilisticRelation(sites_schema, store=store, name="sites")
    for s in range(N_SITES):
        sites.insert(certain={"site_id": s, "region": s % N_REGIONS})
    return store, readings, sites


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def _result_key(rows):
    """An exact per-tuple fingerprint: id, certain values, pdf contents."""
    return [
        (
            t.tuple_id,
            tuple(sorted(t.certain.items())),
            tuple(
                (tuple(sorted(dep)), repr(pdf))
                for dep, pdf in sorted(t.pdfs.items(), key=lambda kv: sorted(kv[0]))
            ),
        )
        for t in rows
    ]


def _sweep(store, make_plan, scalar_run):
    """The shared cold/warm interleaved protocol over (size, columnar) cells.

    Every run starts from the same history-store id snapshot, so the id
    streams — and therefore the result fingerprints — must match exactly.
    """
    id0 = store._next_tuple_id

    def reset_ids():
        store._next_tuple_id = id0

    def cold_scalar():
        PDF_OP_CACHE.reset()
        reset_ids()
        return scalar_run()

    def cold_cell(size, columnar):
        PDF_OP_CACHE.reset()
        reset_ids()
        return [t for b in make_plan(columnar).batches(size) for t in b.tuples]

    cells = [(size, columnar) for size in BATCH_SIZES for columnar in (False, True)]
    scalar_t = float("inf")
    best = {cell: float("inf") for cell in cells}
    scalar_rows = None
    rows_by_cell = {}
    cold_by_cell = {}
    # Interleave the cold repeats round-robin (see bench_micro_engine.py:
    # sequential best-of-N lets load drift skew every speedup one way).
    for _ in range(5):
        t, scalar_rows = _timed(cold_scalar)
        scalar_t = min(scalar_t, t)
        for cell in cells:
            t, rows_by_cell[cell] = _timed(lambda: cold_cell(*cell))
            cold_by_cell[cell] = pdf_cache_stats()
            best[cell] = min(best[cell], t)

    scalar_key = _result_key(scalar_rows)
    variants = []
    for size, columnar in cells:
        assert _result_key(rows_by_cell[(size, columnar)]) == scalar_key, (
            f"cell (batch={size}, columnar={columnar}) diverged from reference"
        )
        PDF_OP_CACHE.hits = 0  # warm protocol: keep entries, zero counters
        PDF_OP_CACHE.misses = 0
        reset_ids()
        warm_t0 = time.perf_counter()
        warm_rows = [t for b in make_plan(columnar).batches(size) for t in b.tuples]
        warm_t = time.perf_counter() - warm_t0
        assert len(warm_rows) == len(scalar_rows)
        variants.append(
            {
                "batch_size": size,
                "columnar": columnar,
                "seconds": best[(size, columnar)],
                "speedup": scalar_t / best[(size, columnar)],
                "cold_cache": cold_by_cell[(size, columnar)],
                "warm_seconds": warm_t,
                "warm_cache": pdf_cache_stats(),
            }
        )
    reset_ids()
    return scalar_t, len(scalar_rows), variants


def bench_join_groupby_sweep(benchmark, capsys):
    """Scalar vs columnar threshold + equi-join + GROUP BY pipeline.

    The headline cells: ``readings WHERE PROB(temp in (18,24)) > 0.9 JOIN
    sites ON site = site_id`` followed by ``GROUP BY region`` with COUNT(*)
    and EXPECTED(temp) — the paper's Section III-E threshold shape feeding
    an analytic rollup.  Batch >= 256 columnar must reach ``PIPELINE_BAR``
    (10x at the full ``SWEEP_N``); the pure-join sweep must stay at least
    at ``JOIN_PARITY_BAR`` of the scalar reference.
    """
    store, readings, sites = _build()
    pred = Comparison("site", "=", col("site_id"))
    range_pred = And([Comparison("temp", ">", 18.0), Comparison("temp", "<", 24.0)])
    legacy_cfg = ModelConfig(columnar=False)
    columnar_cfg = ModelConfig(columnar=True)

    def make_join(columnar, left=None):
        cfg = columnar_cfg if columnar else legacy_cfg
        return HashJoin(
            left if left is not None else RelationScan(readings, columnar=columnar),
            RelationScan(sites, columnar=columnar),
            "site",
            "site_id",
            pred,
            store,
            cfg,
        )

    def make_pipeline(columnar):
        # The paper's Section III-E threshold-query shape feeding an
        # analytic rollup: likely readings join their site dimension, then
        # per-region COUNT (Poisson-binomial) and EXPECTED(temp).
        cfg = columnar_cfg if columnar else legacy_cfg
        probable = ProbFilter(
            RelationScan(readings, columnar=columnar),
            range_pred,
            ">",
            0.9,
            store,
            cfg,
        )
        return GroupAggregate(
            make_join(columnar, left=probable),
            ["region"],
            [AggSpec("count"), AggSpec("expected", "temp")],
            store,
            cfg,
        )

    def run():
        pipe_scalar_t, pipe_rows, pipe_variants = _sweep(
            store, make_pipeline, lambda: list(iter(make_pipeline(False)))
        )
        join_scalar_t, join_rows, join_variants = _sweep(
            store, make_join, lambda: list(iter(make_join(False)))
        )
        return {
            "workload": "equi_join_groupby",
            "tuples": SWEEP_N,
            "sites": N_SITES,
            "regions": N_REGIONS,
            "result_rows": pipe_rows,
            "scalar_seconds": pipe_scalar_t,
            "environment": environment_info(),
            "variants": pipe_variants,
            "join_only": {
                "workload": "equi_join",
                "result_rows": join_rows,
                "scalar_seconds": join_scalar_t,
                "variants": join_variants,
            },
        }

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    out_name = os.environ.get("REPRO_BENCH_JOIN_OUT", "BENCH_join.json")
    out_path = Path(__file__).resolve().parents[1] / out_name
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    with capsys.disabled():
        print()
        from repro.bench.reporting import print_figure

        for title, section in (
            (
                "Columnar join + GROUP BY pipeline (scalar baseline "
                f"{report['scalar_seconds'] * 1000:.2f} ms)",
                report["variants"],
            ),
            (
                "Columnar hash join only (scalar baseline "
                f"{report['join_only']['scalar_seconds'] * 1000:.2f} ms)",
                report["join_only"]["variants"],
            ),
        ):
            print_figure(
                title,
                ["batch_size", "variant", "seconds", "speedup", "warm_hit_rate"],
                [
                    [
                        v["batch_size"],
                        "columnar" if v["columnar"] else "batched",
                        v["seconds"],
                        v["speedup"],
                        v["warm_cache"]["hit_rate"],
                    ]
                    for v in section
                ],
            )
        print(f"wrote {out_path}")

    pipe = [
        v["speedup"]
        for v in report["variants"]
        if v["batch_size"] >= 256 and v["columnar"]
    ]
    assert max(pipe) >= PIPELINE_BAR, (
        f"join+GROUP BY columnar >=256 speedups {pipe} below the "
        f"{PIPELINE_BAR}x bar"
    )
    join = [
        v["speedup"]
        for v in report["join_only"]["variants"]
        if v["batch_size"] >= 256 and v["columnar"]
    ]
    assert max(join) >= JOIN_PARITY_BAR, (
        f"join columnar >=256 speedups {join} regressed below "
        f"{JOIN_PARITY_BAR}x of the reference"
    )
