"""Ablation A1 — symbolic floors vs materialised floors.

Section III-A's key implementation optimisation: applying a selection to a
symbolic pdf keeps a symbolic ``[Gaus, Floor{...}]`` pair instead of
materialising a histogram.  This ablation measures chains of range
selections evaluated both ways:

* symbolic — each floor is an interval-set intersection; mass queries stay
  closed-form,
* materialised — every floor collapses the pdf to grid form first (what an
  implementation without symbolic floors would do).

Run: ``pytest benchmarks/bench_ablation_symbolic_floors.py --benchmark-only -q``
"""

import pytest

from repro.bench.reporting import print_figure
from repro.pdf import BoxRegion, IntervalSet
from repro.workloads import generate_range_queries, generate_readings

N_PDFS = 200
CHAIN = 4


@pytest.fixture(scope="module")
def workload():
    readings = generate_readings(N_PDFS, seed=31)
    queries = generate_range_queries(CHAIN, seed=32)
    # Widen the windows so chained floors keep non-trivial mass.
    regions = [
        BoxRegion({"value": IntervalSet.between(q.lo - 20, q.hi + 20)})
        for q in queries
    ]
    return [r.pdf.with_attrs(["value"]) for r in readings], regions


def _chain_symbolic(pdfs, regions):
    total = 0.0
    for pdf in pdfs:
        current = pdf
        for region in regions:
            current = current.restrict(region)
        total += current.mass()
    return total


def _chain_materialised(pdfs, regions):
    total = 0.0
    for pdf in pdfs:
        current = pdf.to_grid()
        for region in regions:
            current = current.restrict(region)
        total += current.mass()
    return total


def bench_floor_chain_symbolic(benchmark, workload):
    pdfs, regions = workload
    benchmark(_chain_symbolic, pdfs, regions)


def bench_floor_chain_materialised(benchmark, workload):
    pdfs, regions = workload
    benchmark(_chain_materialised, pdfs, regions)


def bench_ablation_a1_report(benchmark, workload, capsys):
    """Symbolic floors must be faster *and* exact; grids are approximate."""
    import time

    pdfs, regions = workload

    def run():
        t0 = time.perf_counter()
        mass_symbolic = _chain_symbolic(pdfs, regions)
        t1 = time.perf_counter()
        mass_grid = _chain_materialised(pdfs, regions)
        t2 = time.perf_counter()
        return (t1 - t0, mass_symbolic, t2 - t1, mass_grid)

    sym_s, sym_mass, grid_s, grid_mass = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print_figure(
            "Ablation A1: symbolic floors vs materialised floors",
            ["variant", "seconds", "total_mass"],
            [["symbolic", sym_s, sym_mass], ["materialised", grid_s, grid_mass]],
        )
    # Both compute (approximately) the same masses...
    assert grid_mass == pytest.approx(sym_mass, rel=0.05)
    # ...but materialising on the first floor wastes time on this workload.
    assert sym_s < grid_s
