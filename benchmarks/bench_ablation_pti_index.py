"""Ablation A4 — probability-threshold index vs sequential scan.

The PTI (the paper's reference [6], integrated here as the engine's
uncertain-column index) prunes records whose quantile x-bounds cannot
satisfy a probabilistic range query, avoiding page reads and pdf
evaluations.  This ablation measures selective range queries with and
without the index and reports the page-read savings.

Run: ``pytest benchmarks/bench_ablation_pti_index.py --benchmark-only -q``
"""

import time

import pytest

from repro.bench.figures import _build_database
from repro.bench.protocol import cold_start
from repro.bench.reporting import print_figure
from repro.workloads import generate_readings

N = 2000


def _fresh_db(with_index: bool):
    readings = generate_readings(N, seed=61)
    db = _build_database(readings, "symbolic", 0, buffer_pages=32)
    if with_index:
        db.execute("CREATE PROB INDEX ON readings (value)")
    return db


def _selective_queries(db):
    rows = 0
    for lo in (5.0, 35.0, 65.0, 95.0):
        result = db.execute(
            f"SELECT rid FROM readings WHERE value > {lo} AND value < {lo + 2}"
        )
        rows += len(result)
    return rows


def bench_range_query_seqscan(benchmark):
    db = _fresh_db(with_index=False)

    def run():
        cold_start(db)
        return _selective_queries(db)

    benchmark(run)


def bench_range_query_pti(benchmark):
    db = _fresh_db(with_index=True)

    def run():
        cold_start(db)
        return _selective_queries(db)

    benchmark(run)


def bench_ablation_a4_report(benchmark, capsys):
    """Same answers; the index trades a build pass for per-query savings."""

    def run():
        out = []
        for with_index in (False, True):
            db = _fresh_db(with_index)
            cold_start(db)
            t0 = time.perf_counter()
            rows = _selective_queries(db)
            elapsed = time.perf_counter() - t0
            out.append(
                [
                    "pti" if with_index else "seqscan",
                    elapsed,
                    db.io_counters.reads,
                    rows,
                ]
            )
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print_figure(
            "Ablation A4: probability-threshold index vs sequential scan",
            ["access_path", "seconds", "page_reads", "result_rows"],
            rows,
        )
    seq, pti = rows
    assert seq[3] == pti[3]  # identical answers
    assert pti[1] < seq[1]  # faster
