"""Figure 4 — Accuracy vs Sample Size.

Regenerates the paper's accuracy comparison between histogram and discrete
approximations of Gaussian pdfs under the Section IV range-query workload,
and benchmarks the per-representation range-probability kernels.

Run: ``pytest benchmarks/bench_fig4_accuracy.py --benchmark-only -q``
"""

import pytest

from repro.bench.figures import fig4_accuracy
from repro.bench.reporting import print_figure
from repro.pdf import IntervalSet, discretize, to_histogram
from repro.workloads import generate_range_queries, generate_readings

SAMPLE_SIZES = (2, 3, 5, 8, 10, 15, 20, 25, 30)


def bench_fig4_series(benchmark, capsys):
    """Regenerate and print the full Figure 4 data series (hist-5 ~ ±0.01)."""
    headers, rows = benchmark.pedantic(
        lambda: fig4_accuracy(sample_sizes=SAMPLE_SIZES, n_pdfs=100, n_queries=100),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print_figure("Figure 4: Accuracy vs Sample Size", headers, rows)
    by_size = {int(r[0]): r[1:] for r in rows}
    # Paper-shape assertions.
    assert by_size[5][0] < 0.02  # hist-5 around ±0.01
    assert by_size[25][2] < 2 * by_size[5][0]  # disc needs ~25 points
    for size in (5, 10, 25):
        assert by_size[size][0] < by_size[size][2]  # hist beats disc


@pytest.fixture(scope="module")
def workload():
    readings = generate_readings(50, seed=7)
    queries = generate_range_queries(50, seed=8)
    windows = [IntervalSet.between(q.lo, q.hi) for q in queries]
    return readings, windows


def _total_prob(pdfs, windows):
    total = 0.0
    for pdf in pdfs:
        for window in windows:
            total += pdf.prob_interval(window)
    return total


def bench_symbolic_range_queries(benchmark, workload):
    readings, windows = workload
    pdfs = [r.pdf for r in readings]
    benchmark(_total_prob, pdfs, windows)


def bench_histogram5_range_queries(benchmark, workload):
    readings, windows = workload
    pdfs = [to_histogram(r.pdf, 5) for r in readings]
    benchmark(_total_prob, pdfs, windows)


def bench_discrete25_range_queries(benchmark, workload):
    readings, windows = workload
    pdfs = [discretize(r.pdf, 25) for r in readings]
    benchmark(_total_prob, pdfs, windows)


def bench_discretization_itself(benchmark, workload):
    readings, _ = workload
    benchmark(lambda: [discretize(r.pdf, 25) for r in readings])


def bench_histogramming_itself(benchmark, workload):
    readings, _ = workload
    benchmark(lambda: [to_histogram(r.pdf, 5) for r in readings])
