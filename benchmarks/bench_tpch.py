"""Million-tuple uncertain-TPC-H sweep: in-memory vs memory-bounded.

For each scale factor the workload is generated and loaded once (the
generator re-derives identical data from the seed, so the load is the only
materialisation), then every query of the benchmark suite runs twice —
unbounded, and under a ``work_mem`` budget that forces the Grace hash join
and the external merge sort to spill — and the two result streams are
asserted **bitwise identical** per cell: tuple ids, order, certain values,
and pdf contents.  Spill activity (partitions, runs, bytes) is recorded
per cell from the global spill counters, and the spilled plan of each
query at the smallest scale factor is captured via ``EXPLAIN ANALYZE`` so
the report shows the ``spill_partitions=`` / ``sort_runs=`` operators.

Writes ``BENCH_tpch.json`` at the repo root.

Environment overrides (CI smoke uses tiny values):

* ``REPRO_BENCH_TPCH_SFS`` — comma-separated scale factors
  (default ``0.01,0.05,0.1``; 0.1 is ~770k tuples across the 3 tables),
* ``REPRO_BENCH_TPCH_WORK_MEM`` — spill budget in bytes (default 4 MiB),
* ``REPRO_BENCH_TPCH_OUT`` — report filename.

Run: ``pytest benchmarks/bench_tpch.py --benchmark-only -q``
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import replace
from pathlib import Path

from repro.bench.envinfo import environment_info
from repro.core.operations import PDF_OP_CACHE
from repro.engine.database import Database
from repro.engine.executor.spill import SPILL_STATS
from repro.workloads import TpchConfig, generate_tpch, query_suite, table_row_counts

SCALE_FACTORS = tuple(
    float(s)
    for s in os.environ.get("REPRO_BENCH_TPCH_SFS", "0.01,0.05,0.1").split(",")
    if s.strip()
)
WORK_MEM = int(os.environ.get("REPRO_BENCH_TPCH_WORK_MEM", str(4 << 20)))

#: Above this lineitem count the build side of the join and every ORDER BY
#: input exceed the default budget, so the sweep MUST observe spills.
SPILL_EXPECTED_ROWS = 150_000


def _result_key(rows):
    """Exact per-tuple fingerprint: id, certain values, pdf contents."""
    return [
        (
            t.tuple_id,
            tuple(sorted(t.certain.items())),
            tuple(
                (tuple(sorted(dep)), repr(pdf))
                for dep, pdf in sorted(t.pdfs.items(), key=lambda kv: sorted(kv[0]))
            ),
        )
        for t in rows
    ]


def _timed_run(db, sql, id0):
    db.catalog.store._next_tuple_id = id0
    PDF_OP_CACHE.reset()
    t0 = time.perf_counter()
    result = db.execute(sql)
    return time.perf_counter() - t0, result


def _spill_plan_lines(plan_text):
    return [
        line.strip()
        for line in plan_text.splitlines()
        if "spill_partitions=" in line or "sort_runs=" in line
    ]


def _sweep_scale_factor(sf, capture_plans):
    config = TpchConfig(scale_factor=sf, seed=0)
    db = Database()
    t0 = time.perf_counter()
    generate_tpch(db, config)
    load_seconds = time.perf_counter() - t0
    base_config = db.catalog.config
    spill_config = replace(base_config, work_mem=WORK_MEM)
    id0 = db.catalog.store._next_tuple_id

    queries = []
    total_spills = {"join_spills": 0, "sort_spills": 0}
    for name, sql in query_suite(config):
        db.catalog.config = base_config
        mem_seconds, mem_result = _timed_run(db, sql, id0)
        mem_key = _result_key(mem_result.rows)

        db.catalog.config = spill_config
        SPILL_STATS.reset()
        spill_seconds, spill_result = _timed_run(db, sql, id0)
        stats = SPILL_STATS.snapshot()
        total_spills["join_spills"] += stats["join_spills"]
        total_spills["sort_spills"] += stats["sort_spills"]

        assert _result_key(spill_result.rows) == mem_key, (
            f"sf={sf} query={name}: spilled result diverged from in-memory"
        )

        cell = {
            "query": name,
            "sql": sql,
            "rows": len(mem_result.rows),
            "in_memory_seconds": mem_seconds,
            "spilled_seconds": spill_seconds,
            "spill_stats": stats,
            "identical": True,
        }
        if capture_plans:
            db.catalog.store._next_tuple_id = id0
            analyzed = db.execute(f"EXPLAIN ANALYZE {sql}")
            cell["spill_operators"] = _spill_plan_lines(analyzed.plan_text or "")
        queries.append(cell)

    db.catalog.config = base_config
    counts = table_row_counts(config)
    if counts["lineitem"] >= SPILL_EXPECTED_ROWS:
        assert total_spills["join_spills"] >= 1, (
            f"sf={sf}: expected the hash join to spill under {WORK_MEM} bytes"
        )
        assert total_spills["sort_spills"] >= 1, (
            f"sf={sf}: expected at least one external sort under {WORK_MEM} bytes"
        )
    return {
        "scale_factor": sf,
        "table_rows": counts,
        "total_tuples": sum(counts.values()),
        "load_seconds": load_seconds,
        "work_mem": WORK_MEM,
        "spills_observed": total_spills,
        "queries": queries,
    }


def bench_tpch_sweep(benchmark, capsys):
    """SF sweep x query suite; every cell spilled ≡ in-memory, bitwise."""

    def run():
        sweeps = [
            _sweep_scale_factor(sf, capture_plans=(i == 0))
            for i, sf in enumerate(sorted(SCALE_FACTORS))
        ]
        return {
            "workload": "tpch_uncertain",
            "scale_factors": sorted(SCALE_FACTORS),
            "work_mem": WORK_MEM,
            "environment": environment_info(),
            "sweeps": sweeps,
        }

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    out_name = os.environ.get("REPRO_BENCH_TPCH_OUT", "BENCH_tpch.json")
    out_path = Path(__file__).resolve().parents[1] / out_name
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    with capsys.disabled():
        print()
        from repro.bench.reporting import print_figure

        for sweep in report["sweeps"]:
            print_figure(
                f"uncertain TPC-H SF {sweep['scale_factor']:g} "
                f"({sweep['total_tuples']} tuples, load {sweep['load_seconds']:.1f}s, "
                f"work_mem {sweep['work_mem']})",
                ["query", "rows", "in_memory_s", "spilled_s", "join_spills", "sort_runs"],
                [
                    [
                        q["query"],
                        q["rows"],
                        q["in_memory_seconds"],
                        q["spilled_seconds"],
                        q["spill_stats"]["join_spills"],
                        q["spill_stats"]["sort_runs"],
                    ]
                    for q in sweep["queries"]
                ],
            )
