"""Figure 5 — Performance of Discretized PDFs.

Regenerates the paper's runtime/IO comparison of the three representations
(symbolic, 5-bucket histogram, 25-point discrete — the latter two fixed for
equal accuracy per Figure 4) over a growing ``Readings`` table, and
benchmarks the end-to-end range-query workload per representation.

The 2008 testbed was disk-bound; the printed ``*_cost`` series charges each
simulated physical page read 1 ms on top of measured CPU time (see
DESIGN.md's substitution table), with raw CPU seconds and page counts
reported alongside.

Run: ``pytest benchmarks/bench_fig5_discretization.py --benchmark-only -q``
"""

import pytest

from repro.bench.figures import (
    _build_database,
    _run_range_workload,
    fig5_discretized_performance,
)
from repro.bench.reporting import print_figure
from repro.workloads import generate_range_queries, generate_readings

TUPLES = 1000
QUERIES = 5


def bench_fig5_series(benchmark, capsys):
    """Regenerate and print the full Figure 5 data series."""
    headers, rows = benchmark.pedantic(
        lambda: fig5_discretized_performance(
            tuple_counts=(250, 500, 1000, 2000), n_queries=5
        ),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print_figure("Figure 5: Performance of Discretized PDFs", headers, rows)
    idx = {h: i for i, h in enumerate(headers)}
    large = rows[-1]
    # Paper shape: discrete-25 costs the most; I/O strictly ordered.
    assert large[idx["disc25_cost"]] > large[idx["hist5_cost"]]
    assert large[idx["disc25_io"]] > large[idx["hist5_io"]] > large[idx["symbolic_io"]]


@pytest.fixture(scope="module")
def readings():
    return generate_readings(TUPLES, seed=11)


@pytest.fixture(scope="module")
def queries():
    return generate_range_queries(QUERIES, seed=12)


def bench_fig5_symbolic_workload(benchmark, readings, queries):
    db = _build_database(readings, "symbolic", 0, buffer_pages=64)
    benchmark(_run_range_workload, db, queries)


def bench_fig5_histogram5_workload(benchmark, readings, queries):
    db = _build_database(readings, "histogram", 5, buffer_pages=64)
    benchmark(_run_range_workload, db, queries)


def bench_fig5_discrete25_workload(benchmark, readings, queries):
    db = _build_database(readings, "discrete", 25, buffer_pages=64)
    benchmark(_run_range_workload, db, queries)


def bench_fig5_load_symbolic(benchmark, readings, queries):
    benchmark.pedantic(
        lambda: _build_database(readings, "symbolic", 0, buffer_pages=64),
        rounds=2,
        iterations=1,
    )


def bench_fig5_load_discrete25(benchmark, readings, queries):
    benchmark.pedantic(
        lambda: _build_database(readings, "discrete", 25, buffer_pages=64),
        rounds=2,
        iterations=1,
    )
