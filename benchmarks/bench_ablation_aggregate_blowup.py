"""Ablation A3 — the aggregate representation blow-up (Section I).

The paper motivates continuous representations with aggregates: the exact
SUM of n discrete uncertain attributes can take exponentially many values,
while a moment-matched Gaussian stays constant size.  This ablation sweeps
n and reports representation size and time for both strategies — the
crossover is the paper's argument in numbers.

Run: ``pytest benchmarks/bench_ablation_aggregate_blowup.py --benchmark-only -q``
"""

import time

import numpy as np
import pytest

from repro.bench.reporting import print_figure
from repro.core import Column, DataType, ProbabilisticRelation, ProbabilisticSchema
from repro.core.aggregates import sum_distribution
from repro.engine.storage.serialize import pdf_size
from repro.pdf import DiscretePdf


def _relation(n, seed=51):
    """n tuples whose discrete supports are deliberately non-aligned."""
    rng = np.random.default_rng(seed)
    schema = ProbabilisticSchema(
        [Column("id", DataType.INT), Column("v", DataType.REAL)], [{"v"}]
    )
    rel = ProbabilisticRelation(schema)
    for i in range(n):
        values = rng.uniform(0, 100, size=3)
        probs = rng.dirichlet(np.ones(3))
        rel.insert(
            certain={"id": i},
            uncertain={"v": DiscretePdf(dict(zip(values, probs)))},
        )
    return rel


def bench_sum_exact_n8(benchmark):
    rel = _relation(8)
    benchmark.pedantic(lambda: sum_distribution(rel, "v", method="exact"), rounds=3)


def bench_sum_gaussian_n8(benchmark):
    rel = _relation(8)
    benchmark.pedantic(lambda: sum_distribution(rel, "v", method="gaussian"), rounds=3)


def bench_ablation_a3_report(benchmark, capsys):
    """Sweep n: exact support explodes 3^n, the Gaussian stays 2 floats."""

    def run():
        rows = []
        for n in (2, 4, 6, 8, 10):
            rel = _relation(n)
            t0 = time.perf_counter()
            exact = sum_distribution(rel, "v", method="exact")
            exact_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            gauss = sum_distribution(rel, "v", method="gaussian")
            gauss_s = time.perf_counter() - t0
            rows.append(
                [
                    n,
                    len(exact.values),
                    pdf_size(exact),
                    exact_s,
                    pdf_size(gauss),
                    gauss_s,
                    abs(exact.mean() - gauss.mean()),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print_figure(
            "Ablation A3: exact discrete SUM vs continuous approximation",
            [
                "n_tuples",
                "exact_support",
                "exact_bytes",
                "exact_s",
                "gauss_bytes",
                "gauss_s",
                "mean_abs_diff",
            ],
            rows,
        )
    # Exponential support growth for exact; constant size for Gaussian.
    supports = [r[1] for r in rows]
    assert supports[-1] > supports[0] * 50
    gauss_sizes = {r[4] for r in rows}
    assert len(gauss_sizes) == 1
    # Moment matching is exact in the mean.
    assert all(r[6] < 1e-6 for r in rows)
