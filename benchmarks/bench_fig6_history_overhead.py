"""Figure 6 — Overhead of Histories.

Regenerates the paper's final experiment: joins over range queries (which
involve floors and products of historically dependent pdfs) and projections
of the resulting correlated data (collapsing the 2-D pdfs), with and without
the history machinery.  The paper reports a 5-20% end-to-end overhead and
notes that ignoring histories yields incorrect answers (Figure 3).

Run: ``pytest benchmarks/bench_fig6_history_overhead.py --benchmark-only -q``
"""

import pytest

from repro.bench.figures import _history_workload, fig6_history_overhead
from repro.bench.reporting import print_figure

TUPLES = 300


def bench_fig6_series(benchmark, capsys):
    """Regenerate and print the full Figure 6 data series."""
    headers, rows = benchmark.pedantic(
        lambda: fig6_history_overhead(tuple_counts=(100, 200, 300, 400, 500)),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print_figure("Figure 6: Overhead of Histories", headers, rows)
    idx = {h: i for i, h in enumerate(headers)}
    for row in rows:
        # With histories the join phase does strictly more work.
        assert row[idx["join_hist_s"]] >= row[idx["join_nohist_s"]] * 0.9
        # Correctness overhead stays bounded (paper: 5-20%).
        assert row[idx["overhead_pct"]] < 150.0


def bench_fig6_join_with_histories(benchmark):
    benchmark.pedantic(
        lambda: _history_workload(TUPLES, use_history=True, seed=23),
        rounds=3,
        iterations=1,
    )


def bench_fig6_join_without_histories(benchmark):
    benchmark.pedantic(
        lambda: _history_workload(TUPLES, use_history=False, seed=23),
        rounds=3,
        iterations=1,
    )
