"""Shared benchmark fixtures, result reporting, and the cold/warm protocol.

Each ``bench_fig*.py`` regenerates one of the paper's figures: the
pytest-benchmark entries time the figure's workload kernels, and a summary
hook prints the full figure series (the same rows ``python -m repro.bench``
emits) so benchmark runs double as reproduction runs.

Cold/warm measurement protocol
------------------------------

Benchmarks that touch a :class:`~repro.engine.database.Database` must state
which cache regime they measure and reset accordingly through
:mod:`repro.bench.protocol` — never by poking pool internals directly:

* **cold** — ``cold_start(db)``: flushes and drops every buffer-pool frame
  (``BufferPool.clear()``), zeroes the pool and disk counters
  (``BufferPool.reset_stats()``), and empties the pdf-op memo cache
  (``PDF_OP_CACHE.reset()``).  Every page read and every pdf operation in
  the measured region is then paid for, matching the paper's disk-bound
  setup.  Used by the figure workloads and the access-path ablations.
* **warm** — ``warm_start(db)``: keeps cached pages and memoised pdf-op
  results but zeroes all counters, so reported hit rates and page reads
  cover only the measured region.  Used when measuring steady-state
  repeated queries.

The ``cold_db`` fixture below applies the cold protocol to a database the
benchmark built beforehand.
"""

import pytest

from repro.bench.protocol import cold_start, pdf_cache_stats, warm_start  # noqa: F401


def pytest_collection_modifyitems(items):
    # Benchmarks run in definition order; keep figure order stable.
    items.sort(key=lambda item: item.fspath.basename)


@pytest.fixture
def cold_db():
    """Callable fixture: ``cold_db(db)`` resets ``db`` per the cold protocol
    and returns it, for use inside timed benchmark closures."""

    def _cold(db):
        cold_start(db)
        return db

    return _cold
