"""Shared benchmark fixtures and result reporting.

Each ``bench_fig*.py`` regenerates one of the paper's figures: the
pytest-benchmark entries time the figure's workload kernels, and a summary
hook prints the full figure series (the same rows ``python -m repro.bench``
emits) so benchmark runs double as reproduction runs.
"""

import pytest


def pytest_collection_modifyitems(items):
    # Benchmarks run in definition order; keep figure order stable.
    items.sort(key=lambda item: item.fspath.basename)
