"""Micro-benchmarks of the engine substrate: serialization, storage, indexes.

These do not map to a paper figure; they document where the reproduction's
constant factors come from (useful when comparing against the paper's
absolute numbers — see EXPERIMENTS.md).

Run: ``pytest benchmarks/bench_micro_engine.py --benchmark-only -q``
"""

import pytest

from repro.engine.index.btree import BPlusTree
from repro.engine.storage.buffer import BufferPool
from repro.engine.storage.disk import MemoryDisk
from repro.engine.storage.heapfile import HeapFile, RID
from repro.engine.storage.serialize import (
    decode_pdf,
    decode_tuple,
    encode_pdf,
    encode_tuple,
)
from repro.core.model import build_base_tuple
from repro.core.history import HistoryStore
from repro.pdf import GaussianPdf, discretize, to_histogram
from repro.workloads import generate_readings, readings_schema

N = 500


@pytest.fixture(scope="module")
def readings():
    return generate_readings(N, seed=77)


@pytest.fixture(scope="module")
def encoded_tuples(readings):
    store = HistoryStore()
    schema = readings_schema()
    out = []
    for r in readings:
        t = build_base_tuple(
            schema, store, certain={"rid": r.rid}, uncertain={"value": r.pdf}
        )
        out.append(encode_tuple(t))
    return out


def bench_encode_gaussian_pdf(benchmark):
    g = GaussianPdf(20, 5, attr="value")
    benchmark(encode_pdf, g)


def bench_decode_gaussian_pdf(benchmark):
    data = encode_pdf(GaussianPdf(20, 5, attr="value"))
    benchmark(decode_pdf, data)


def bench_decode_discrete25_pdf(benchmark):
    data = encode_pdf(discretize(GaussianPdf(20, 5, attr="value"), 25))
    benchmark(decode_pdf, data)


def bench_decode_histogram5_pdf(benchmark):
    data = encode_pdf(to_histogram(GaussianPdf(20, 5, attr="value"), 5))
    benchmark(decode_pdf, data)


def bench_decode_full_tuples(benchmark, encoded_tuples):
    def run():
        for data in encoded_tuples:
            decode_tuple(data)

    benchmark(run)


def bench_heapfile_insert(benchmark, encoded_tuples):
    def run():
        heap = HeapFile(BufferPool(MemoryDisk(), capacity=64), name="b")
        for data in encoded_tuples:
            heap.insert(data)
        return heap

    benchmark.pedantic(run, rounds=3)


def bench_heapfile_scan(benchmark, encoded_tuples):
    heap = HeapFile(BufferPool(MemoryDisk(), capacity=64), name="b")
    for data in encoded_tuples:
        heap.insert(data)

    benchmark(lambda: sum(1 for _ in heap.scan()))


def bench_btree_insert(benchmark):
    def run():
        tree = BPlusTree(order=64)
        for i in range(2000):
            tree.insert(i * 7919 % 2000, RID(i, 0))
        return tree

    benchmark.pedantic(run, rounds=3)


def bench_btree_range_scan(benchmark):
    tree = BPlusTree(order=64)
    for i in range(2000):
        tree.insert(i, RID(i, 0))
    benchmark(lambda: sum(1 for _ in tree.range_scan(500, 1500)))
