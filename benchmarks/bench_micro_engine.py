"""Micro-benchmarks of the engine substrate: serialization, storage, indexes,
and the batched execution pipeline.

These do not map to a paper figure; they document where the reproduction's
constant factors come from (useful when comparing against the paper's
absolute numbers — see EXPERIMENTS.md).  The batch-size sweep additionally
writes ``BENCH_engine.json`` at the repo root with the scalar-vs-batch
speedups and pdf-op cache hit rates (see docs/PERFORMANCE.md).

Run: ``pytest benchmarks/bench_micro_engine.py --benchmark-only -q``
"""

import json
import os
import random
import time
from pathlib import Path

import pytest

from repro.bench.envinfo import environment_info
from repro.bench.protocol import pdf_cache_stats
from repro.core import Column, DataType, ProbabilisticRelation, ProbabilisticSchema
from repro.core.model import ModelConfig
from repro.core.operations import PDF_OP_CACHE
from repro.core.predicates import And, Comparison, col
from repro.engine.executor import (
    AggSpec,
    Filter,
    GroupAggregate,
    HashJoin,
    RelationScan,
)
from repro.engine.index.btree import BPlusTree
from repro.engine.storage.buffer import BufferPool
from repro.engine.storage.disk import MemoryDisk
from repro.engine.storage.heapfile import HeapFile, RID
from repro.engine.storage.serialize import (
    decode_pdf,
    decode_tuple,
    encode_pdf,
    encode_tuple,
)
from repro.core.model import build_base_tuple
from repro.core.history import HistoryStore
from repro.pdf import GaussianPdf, discretize, to_histogram
from repro.workloads import generate_readings, readings_schema

N = 500


@pytest.fixture(scope="module")
def readings():
    return generate_readings(N, seed=77)


@pytest.fixture(scope="module")
def encoded_tuples(readings):
    store = HistoryStore()
    schema = readings_schema()
    out = []
    for r in readings:
        t = build_base_tuple(
            schema, store, certain={"rid": r.rid}, uncertain={"value": r.pdf}
        )
        out.append(encode_tuple(t))
    return out


def bench_encode_gaussian_pdf(benchmark):
    g = GaussianPdf(20, 5, attr="value")
    benchmark(encode_pdf, g)


def bench_decode_gaussian_pdf(benchmark):
    data = encode_pdf(GaussianPdf(20, 5, attr="value"))
    benchmark(decode_pdf, data)


def bench_decode_discrete25_pdf(benchmark):
    data = encode_pdf(discretize(GaussianPdf(20, 5, attr="value"), 25))
    benchmark(decode_pdf, data)


def bench_decode_histogram5_pdf(benchmark):
    data = encode_pdf(to_histogram(GaussianPdf(20, 5, attr="value"), 5))
    benchmark(decode_pdf, data)


def bench_decode_full_tuples(benchmark, encoded_tuples):
    def run():
        for data in encoded_tuples:
            decode_tuple(data)

    benchmark(run)


def bench_heapfile_insert(benchmark, encoded_tuples):
    def run():
        heap = HeapFile(BufferPool(MemoryDisk(), capacity=64), name="b")
        for data in encoded_tuples:
            heap.insert(data)
        return heap

    benchmark.pedantic(run, rounds=3)


def bench_heapfile_scan(benchmark, encoded_tuples):
    heap = HeapFile(BufferPool(MemoryDisk(), capacity=64), name="b")
    for data in encoded_tuples:
        heap.insert(data)

    benchmark(lambda: sum(1 for _ in heap.scan()))


def bench_btree_insert(benchmark):
    def run():
        tree = BPlusTree(order=64)
        for i in range(2000):
            tree.insert(i * 7919 % 2000, RID(i, 0))
        return tree

    benchmark.pedantic(run, rounds=3)


def bench_btree_range_scan(benchmark):
    tree = BPlusTree(order=64)
    for i in range(2000):
        tree.insert(i, RID(i, 0))
    benchmark(lambda: sum(1 for _ in tree.range_scan(500, 1500)))


# ---------------------------------------------------------------------------
# Batched execution pipeline: Gaussian range selection, batch-size sweep
# ---------------------------------------------------------------------------

SWEEP_N = int(os.environ.get("REPRO_BENCH_ENGINE_N", "4000"))
BATCH_SIZES = (1, 32, 256, 1024)

#: speedup bar for the columnar path at batch >= 256; relaxed at reduced N
#: (CI smoke) where fixed per-query overheads dominate the sweep.
COLUMNAR_BAR = 10.0 if SWEEP_N >= 4000 else 2.0


def _gaussian_relation(n=SWEEP_N, seed=7):
    rng = random.Random(seed)
    schema = ProbabilisticSchema(
        [Column("sid", DataType.INT), Column("temp", DataType.REAL)], [{"temp"}]
    )
    rel = ProbabilisticRelation(schema, name="sensors")
    for i in range(n):
        rel.insert(
            certain={"sid": i},
            uncertain={
                "temp": GaussianPdf(
                    rng.uniform(10, 30), rng.uniform(0.5, 4.0), attr="temp"
                )
            },
        )
    return rel


def _best_of(fn, repeats=5):
    """Minimum wall time and last result of ``repeats`` cold runs."""
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def bench_batch_pipeline_sweep(benchmark, capsys):
    """Scalar vs batched vs columnar Gaussian range selection.

    Writes ``BENCH_engine.json``.  For every (batch size, variant) cell the
    result set must be bitwise identical to the scalar reference.  Batch
    >= 256 must deliver >= 3x scalar on the legacy batched path, and the
    columnar struct-of-arrays path must reach ``COLUMNAR_BAR`` (10x at the
    full ``SWEEP_N``) — the ROADMAP "columnar batch representation" bar.
    """
    rel = _gaussian_relation()
    pred = And([Comparison("temp", ">", 18.0), Comparison("temp", "<", 24.0)])
    legacy_cfg = ModelConfig(columnar=False)
    columnar_cfg = ModelConfig(columnar=True)

    def make_plan(columnar):
        cfg = columnar_cfg if columnar else legacy_cfg
        return Filter(RelationScan(rel, columnar=columnar), pred, rel.store, cfg)

    def scalar_run():
        PDF_OP_CACHE.reset()  # cold pdf-op cache per run
        return list(make_plan(False))

    def batch_run(size, columnar):
        PDF_OP_CACHE.reset()
        return [t for b in make_plan(columnar).batches(size) for t in b.tuples]

    def run():
        # Interleave the cold repeats of the scalar baseline and every
        # (size, variant) cell round-robin, taking the per-cell minimum.
        # Sequential best-of-N lets a mid-sweep frequency or load shift hit
        # the baseline and the variants unequally and skew every speedup the
        # same direction; interleaving spreads drift evenly across cells.
        cells = [
            (size, columnar) for size in BATCH_SIZES for columnar in (False, True)
        ]
        scalar_t = float("inf")
        best = {cell: float("inf") for cell in cells}
        scalar_rows = None
        rows_by_cell = {}
        cold_by_cell = {}
        for _ in range(5):
            t, scalar_rows = _timed(scalar_run)
            scalar_t = min(scalar_t, t)
            for cell in cells:
                t, rows_by_cell[cell] = _timed(lambda: batch_run(*cell))
                cold_by_cell[cell] = pdf_cache_stats()
                best[cell] = min(best[cell], t)
        scalar_key = [(t.tuple_id, t.certain["sid"]) for t in scalar_rows]
        variants = []
        for size, columnar in cells:
            rows = rows_by_cell[(size, columnar)]
            assert [(t.tuple_id, t.certain["sid"]) for t in rows] == scalar_key
            PDF_OP_CACHE.hits = 0  # warm protocol: keep entries, zero counters
            PDF_OP_CACHE.misses = 0
            warm_t0 = time.perf_counter()
            warm_rows = [
                t for b in make_plan(columnar).batches(size) for t in b.tuples
            ]
            warm_t = time.perf_counter() - warm_t0
            assert len(warm_rows) == len(scalar_rows)
            variants.append(
                {
                    "batch_size": size,
                    "columnar": columnar,
                    "seconds": best[(size, columnar)],
                    "speedup": scalar_t / best[(size, columnar)],
                    "cold_cache": cold_by_cell[(size, columnar)],
                    "warm_seconds": warm_t,
                    "warm_cache": pdf_cache_stats(),
                }
            )
        return {
            "workload": "gaussian_range_selection",
            "tuples": SWEEP_N,
            "result_rows": len(scalar_rows),
            "scalar_seconds": scalar_t,
            "environment": environment_info(),
            "variants": variants,
        }

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    out_name = os.environ.get("REPRO_BENCH_ENGINE_OUT", "BENCH_engine.json")
    out_path = Path(__file__).resolve().parents[1] / out_name
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    with capsys.disabled():
        print()
        from repro.bench.reporting import print_figure

        print_figure(
            "Batched pipeline: Gaussian range selection (scalar baseline "
            f"{report['scalar_seconds'] * 1000:.2f} ms)",
            ["batch_size", "variant", "seconds", "speedup", "warm_hit_rate"],
            [
                [
                    v["batch_size"],
                    "columnar" if v["columnar"] else "batched",
                    v["seconds"],
                    v["speedup"],
                    v["warm_cache"]["hit_rate"],
                ]
                for v in report["variants"]
            ],
        )
        print(f"wrote {out_path}")

    big = [
        v["speedup"]
        for v in report["variants"]
        if v["batch_size"] >= 256 and not v["columnar"]
    ]
    assert max(big) >= 3.0, f"batch >=256 speedups {big} below the 3x bar"
    col = [
        v["speedup"]
        for v in report["variants"]
        if v["batch_size"] >= 256 and v["columnar"]
    ]
    assert max(col) >= COLUMNAR_BAR, (
        f"columnar >=256 speedups {col} below the {COLUMNAR_BAR}x bar"
    )


# ---------------------------------------------------------------------------
# Join / aggregate operator timings (columnar vs reference, fixed batch 256)
# ---------------------------------------------------------------------------

_JOIN_N = 2000


def _join_operands():
    """Readings (uncertain temp, certain site key) plus a certain dimension."""
    store = HistoryStore()
    rng = random.Random(13)
    readings = ProbabilisticRelation(
        ProbabilisticSchema(
            [
                Column("rid", DataType.INT),
                Column("site", DataType.INT),
                Column("temp", DataType.REAL),
            ],
            [{"temp"}],
        ),
        store=store,
        name="readings",
    )
    for i in range(_JOIN_N):
        readings.insert(
            certain={"rid": i, "site": i % 64},
            uncertain={
                "temp": GaussianPdf(
                    rng.uniform(10, 30), rng.uniform(0.5, 4.0), attr="temp"
                )
            },
        )
    sites = ProbabilisticRelation(
        ProbabilisticSchema(
            [Column("site_id", DataType.INT), Column("region", DataType.INT)]
        ),
        store=store,
        name="sites",
    )
    for s in range(64):
        sites.insert(certain={"site_id": s, "region": s % 8})
    return store, readings, sites


def _hash_join(store, readings, sites, columnar):
    cfg = ModelConfig(columnar=columnar)
    return HashJoin(
        RelationScan(readings, columnar=columnar),
        RelationScan(sites, columnar=columnar),
        "site",
        "site_id",
        Comparison("site", "=", col("site_id")),
        store,
        cfg,
    )


def bench_hash_join_columnar(benchmark):
    """Vectorized searchsorted probe + block id allocation, batch 256."""
    store, readings, sites = _join_operands()

    def run():
        op = _hash_join(store, readings, sites, columnar=True)
        return sum(len(b.tuples) for b in op.batches(256))

    assert run() == _JOIN_N
    benchmark.pedantic(run, rounds=3)


def bench_hash_join_reference(benchmark):
    """Tuple-at-a-time dict-bucket probe (the scalar baseline)."""
    store, readings, sites = _join_operands()

    def run():
        return sum(1 for _ in _hash_join(store, readings, sites, columnar=False))

    assert run() == _JOIN_N
    benchmark.pedantic(run, rounds=3)


def bench_group_aggregate_columnar(benchmark):
    """np.unique grouping + vectorized COUNT/EXPECTED over the joined stream."""
    store, readings, sites = _join_operands()

    def run():
        op = GroupAggregate(
            _hash_join(store, readings, sites, columnar=True),
            ["region"],
            [AggSpec("count"), AggSpec("expected", "temp")],
            store,
            ModelConfig(columnar=True),
        )
        return sum(len(b.tuples) for b in op.batches(256))

    assert run() == 8
    benchmark.pedantic(run, rounds=3)


def bench_group_aggregate_reference(benchmark):
    """Per-tuple grouping and probability evaluation (the scalar baseline)."""
    store, readings, sites = _join_operands()

    def run():
        op = GroupAggregate(
            _hash_join(store, readings, sites, columnar=False),
            ["region"],
            [AggSpec("count"), AggSpec("expected", "temp")],
            store,
            ModelConfig(columnar=False),
        )
        return sum(1 for _ in op)

    assert run() == 8
    benchmark.pedantic(run, rounds=3)
