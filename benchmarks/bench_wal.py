"""WAL overhead: SQL insert throughput, no-WAL baseline vs group commit.

One autocommitted ``INSERT`` per row (the worst case for a log that
fsyncs on commit), swept over four cells:

* ``nowal`` — in-memory database, no durability (the baseline),
* ``gc1``   — WAL with an fsync on every commit,
* ``gc8``   — group commit, one fsync per 8 commits,
* ``gc64``  — group commit, one fsync per 64 commits.

Every WAL cell must be *semantically identical* to the baseline: the live
``dump_state()`` and the state recovered by reopening the directory both
equal the no-WAL oracle's dump, bit for bit.  Writes ``BENCH_wal.json`` at
the repo root; the acceptance bar is a <= 2.5x slowdown for ``gc64``
relative to the baseline (full-size runs only).

Run: ``pytest benchmarks/bench_wal.py --benchmark-only -q``
Reduced smoke (CI): ``REPRO_BENCH_WAL_N=100 pytest benchmarks/bench_wal.py --benchmark-only -q``
"""

import json
import os
import shutil
import tempfile
import time
from pathlib import Path

from repro.bench.envinfo import environment_info
from repro.engine.database import Database

N = int(os.environ.get("REPRO_BENCH_WAL_N", "600"))

CELLS = {
    "nowal": None,
    "gc1": 1,
    "gc8": 8,
    "gc64": 64,
}


def _statements():
    return [
        f"INSERT INTO r VALUES ({i}, GAUSSIAN({(i % 50) - 25}, 1.5))"
        for i in range(N)
    ]


def _run_cell(group_commit, workdir):
    """Build a database, time the insert stream, return (seconds, db)."""
    if group_commit is None:
        db = Database()
    else:
        db = Database(path=os.path.join(workdir, "db"), group_commit=group_commit)
    db.execute("CREATE TABLE r (rid INT, v REAL UNCERTAIN)")
    stmts = _statements()
    t0 = time.perf_counter()
    for sql in stmts:
        db.execute(sql)
    if group_commit is not None:
        db._wal.sync()  # charge the tail fsync to the timed region
    seconds = time.perf_counter() - t0
    return seconds, db


def bench_wal_group_commit(benchmark, capsys):
    """No-WAL baseline vs fsync-per-commit vs group commit; BENCH_wal.json."""

    def run():
        report_cells = {}
        base_seconds = None
        oracle_dump = None
        for name, gc in CELLS.items():
            workdir = tempfile.mkdtemp(prefix=f"repro-bench-wal-{name}-")
            try:
                seconds, db = _run_cell(gc, workdir)
                dump = db.dump_state()
                if name == "nowal":
                    base_seconds = seconds
                    oracle_dump = dump
                else:
                    # Identity per cell: the WAL'd database holds exactly
                    # the baseline's state, live and after recovery.
                    assert dump == oracle_dump, f"{name}: live state diverged"
                    db.close()
                    recovered = Database(path=os.path.join(workdir, "db"))
                    try:
                        assert recovered.dump_state() == oracle_dump, (
                            f"{name}: recovered state diverged"
                        )
                    finally:
                        recovered.close()
                report_cells[name] = {
                    "seconds": seconds,
                    "inserts_per_s": N / seconds,
                    "slowdown_vs_nowal": seconds / base_seconds,
                }
            finally:
                shutil.rmtree(workdir, ignore_errors=True)
        return {
            "inserts": N,
            "cells": report_cells,
            "environment": environment_info(),
        }

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    out_path = Path(__file__).resolve().parents[1] / "BENCH_wal.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    with capsys.disabled():
        print()
        from repro.bench.reporting import print_figure

        rows = [
            [
                name,
                f"{cell['inserts_per_s']:.0f}/s",
                f"{cell['slowdown_vs_nowal']:.2f}x",
            ]
            for name, cell in report["cells"].items()
        ]
        print_figure(
            f"WAL insert throughput ({N} autocommitted inserts)",
            ["cell", "throughput", "slowdown"],
            rows,
        )
        print(f"wrote {out_path}")

    # Group commit must amortize the log: at a window of >= 64 commits the
    # durable path stays within 2.5x of no WAL at all.  Reduced CI smoke
    # runs still verified state identity above.
    if N >= 500:
        slowdown = report["cells"]["gc64"]["slowdown_vs_nowal"]
        assert slowdown <= 2.5, (
            f"gc64 slowdown {slowdown:.2f}x exceeds the 2.5x bar"
        )
