"""Ablation A2 — lazy vs eager merging of history-implied dependencies.

Section III-D leaves a strategy choice to the implementation: after a join,
the dependencies implied by Λ can be collapsed into Δ *eagerly* (paying the
product up front, making later reads cheap) or *lazily* (cheap join, later
operations repair from ancestors on demand).  This ablation measures both
strategies on a Figure-3-style workload followed by a probability probe of
every result tuple.

Run: ``pytest benchmarks/bench_ablation_lazy_merge.py --benchmark-only -q``
"""

import pytest

from repro.bench.reporting import print_figure
from repro.core import (
    ModelConfig,
    collapse_history,
    cross_product,
    existence_probability,
    project,
)
from repro.workloads import generate_readings, load_readings_relation

N = 80


def _build_crossed(n):
    readings = generate_readings(n, seed=41)
    base = load_readings_relation(readings, representation="discrete", size=3)
    ta = project(base, ["value"])
    from repro.core import prefix_attrs

    return cross_product(
        prefix_attrs(ta, "l"), prefix_attrs(project(base, ["rid"]), "r")
    )


def _probe_all(rel, config):
    return sum(existence_probability(rel, t, config) for t in rel.tuples)


def bench_lazy_join_then_probe(benchmark):
    config = ModelConfig(eager_merge=False)

    def run():
        crossed = _build_crossed(N)
        return _probe_all(crossed, config)

    benchmark.pedantic(run, rounds=2, iterations=1)


def bench_eager_join_then_probe(benchmark):
    config = ModelConfig(eager_merge=False)

    def run():
        crossed = _build_crossed(N)
        collapsed = collapse_history(crossed, config)
        return _probe_all(collapsed, config)

    benchmark.pedantic(run, rounds=2, iterations=1)


def bench_ablation_a2_report(benchmark, capsys):
    """Both strategies agree on every probability; costs differ."""
    import time

    config = ModelConfig()

    def run():
        crossed = _build_crossed(N)
        t0 = time.perf_counter()
        lazy_total = _probe_all(crossed, config)
        t1 = time.perf_counter()
        collapsed = collapse_history(crossed, config)
        mid = time.perf_counter()
        eager_total = _probe_all(collapsed, config)
        t2 = time.perf_counter()
        return (t1 - t0, lazy_total, (t2 - t1), mid - t1, eager_total)

    lazy_s, lazy_total, eager_s, collapse_s, eager_total = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print_figure(
            "Ablation A2: lazy vs eager dependency merging",
            ["variant", "probe_seconds", "total_probability"],
            [
                ["lazy", lazy_s, lazy_total],
                [f"eager (collapse {collapse_s:.3f}s)", eager_s, eager_total],
            ],
        )
    assert lazy_total == pytest.approx(eager_total, rel=1e-6)
